//! The quality-adaptation controller: the server-side state machine that
//! ties together the coarse-grain add/drop rules and the fine-grain
//! inter-layer bandwidth allocation (§2–§4).
//!
//! The controller is transport-agnostic. A congestion-controlled sender (the
//! simulator's RAP agent, or the tokio RAP sender) drives it with:
//!
//! * [`QaController::tick`] once per allocation period (typically one RTT or
//!   a fixed short period) with the current transmission rate — the
//!   controller settles buffer accounting, applies add/drop decisions and
//!   produces per-layer send rates;
//! * [`QaController::on_backoff`] whenever the congestion controller halves
//!   its rate — the controller runs the §2.2 drop rule and switches to the
//!   draining allocator;
//! * [`QaController::next_packet_layer`] for every packet transmission — a
//!   byte-credit scheduler realizes the per-period rates at per-packet
//!   granularity (the paper's `SendPacket` assigns each packet to a layer);
//! * [`QaController::on_packet_delivered`] to keep the sender-side estimate
//!   of the receiver's per-layer buffers honest.
//!
//! Buffer accounting is a sender-side estimate of the receiver's buffers:
//! bytes are credited when the transport confirms their delivery (ACK) and
//! debited by the layer's consumption rate once playout has started. Lost
//! packets are simply never credited.

use crate::adddrop::{check_add, drop_count, required_recovery_buffer_with, AddInputs};
use crate::config::{ConfigError, QaConfig};
use crate::draining::plan_draining;
use crate::filling::allocate_filling;
use crate::metrics::{DropReason, MetricsCollector, QaEvent};
use crate::states::StateSequence;

/// Which side of the sawtooth the flow is on (figure 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Phase {
    /// Transmission rate at or above aggregate consumption: buffers fill.
    Filling,
    /// Transmission rate below aggregate consumption: buffers drain.
    Draining,
}

impl Phase {
    /// Stable lowercase label used in observability exports.
    pub fn label(&self) -> &'static str {
        match self {
            Phase::Filling => "filling",
            Phase::Draining => "draining",
        }
    }
}

/// Outcome of one allocation period.
#[derive(Debug, Clone, PartialEq)]
pub struct TickReport {
    /// Phase after this tick's decisions.
    pub phase: Phase,
    /// Active layer count after add/drop decisions.
    pub n_active: usize,
    /// Per-layer send rates (bytes/s) for the coming period; length
    /// `n_active`. Sums to (approximately) the offered rate.
    pub per_layer_rate: Vec<f64>,
    /// Layers added this tick (0 or 1; the add conditions re-arm only after
    /// the new layer's states are satisfied).
    pub added: usize,
    /// Layers dropped this tick.
    pub dropped: usize,
    /// True when the base layer's buffer ran dry while rate was below its
    /// consumption — a playback stall.
    pub stalled: bool,
}

/// Server-side quality-adaptation state machine. See module docs.
#[derive(Debug, Clone)]
pub struct QaController {
    cfg: QaConfig,
    n_active: usize,
    /// Sender-side estimate of receiver buffer per active layer (bytes).
    bufs: Vec<f64>,
    /// Bytes handed to the transport per layer since the last tick.
    sent_acc: Vec<f64>,
    /// Additive-increase slope estimate `S` (bytes/s²).
    slope: f64,
    /// Transmission rate at the most recent tick (sawtooth peak tracker).
    last_rate: f64,
    /// Rate from which the latest backoff fell; parameterizes the draining
    /// state path.
    peak_rate: f64,
    phase: Phase,
    drain_seq: Option<StateSequence>,
    /// Scratch sequence reused by the per-tick filling-path rebuild.
    fill_scratch: StateSequence,
    /// Scratch sequence reused by the per-tick add-layer check.
    next_scratch: StateSequence,
    /// Byte credits per layer for the packet scheduler.
    credits: Vec<f64>,
    /// Current per-layer allocation (bytes/s).
    alloc_rates: Vec<f64>,
    /// True once `now >= playout_delay`: consumption is being charged.
    playing: bool,
    /// Optional shared memo for state-sequence derivations; when set,
    /// every fill/drain rebuild goes through it (see
    /// [`crate::GeometryCache`]). `None` keeps the standalone rebuild
    /// path — results are bit-identical either way.
    geo_cache: Option<crate::SharedGeometryCache>,
    metrics: MetricsCollector,
}

impl QaController {
    /// Build a controller from a validated configuration.
    pub fn new(cfg: QaConfig) -> Result<Self, ConfigError> {
        let cfg = cfg.validated()?;
        let n = cfg.initial_layers;
        Ok(QaController {
            slope: cfg.min_slope,
            cfg,
            n_active: n,
            bufs: vec![0.0; n],
            sent_acc: vec![0.0; n],
            last_rate: 0.0,
            peak_rate: 0.0,
            phase: Phase::Filling,
            drain_seq: None,
            fill_scratch: StateSequence::default(),
            next_scratch: StateSequence::default(),
            credits: vec![0.0; n],
            alloc_rates: vec![0.0; n],
            playing: false,
            geo_cache: None,
            metrics: MetricsCollector::new(),
        })
    }

    /// Active layer count.
    pub fn n_active(&self) -> usize {
        self.n_active
    }

    /// Current phase.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Sender-side per-layer buffer estimates (bytes).
    pub fn buffers(&self) -> &[f64] {
        &self.bufs
    }

    /// Total *drainable* receiver buffering (bytes): negative per-layer
    /// debts (fluid-model jitter) do not subtract from what other layers
    /// can contribute to recovery.
    pub fn total_buffer(&self) -> f64 {
        self.bufs.iter().map(|b| b.max(0.0)).sum()
    }

    /// Current per-layer allocation (bytes/s) from the last tick.
    pub fn allocation(&self) -> &[f64] {
        &self.alloc_rates
    }

    /// Configuration in use.
    pub fn config(&self) -> &QaConfig {
        &self.cfg
    }

    /// Event log and derived metrics.
    pub fn metrics(&self) -> &MetricsCollector {
        &self.metrics
    }

    /// Mutable access to the metrics collector (for draining events into an
    /// exporter).
    pub fn metrics_mut(&mut self) -> &mut MetricsCollector {
        &mut self.metrics
    }

    /// Current additive-increase slope estimate `S` (bytes/s²) the drop
    /// rule's recovery triangle uses.
    pub fn slope(&self) -> f64 {
        self.slope
    }

    /// Update the additive-increase slope estimate `S` (bytes/s²). RAP's
    /// slope is one packet per RTT per RTT: `S = packet_size / srtt²`.
    pub fn set_slope(&mut self, slope: f64) {
        self.slope = if slope.is_finite() {
            slope.max(self.cfg.min_slope)
        } else {
            self.cfg.min_slope
        };
    }

    /// Record `bytes` confirmed **delivered** to the receiver for `layer`
    /// (the transport reports this on ACK). Crediting at delivery rather
    /// than at send keeps bytes sitting in the bottleneck queue — up to a
    /// bandwidth-delay product — out of the buffer estimate; a send-time
    /// estimate is systematically optimistic by exactly that amount.
    pub fn on_packet_delivered(&mut self, layer: usize, bytes: f64) {
        // A NaN/negative credit would poison the buffer estimate and every
        // decision derived from it; transports under fault injection can
        // surface such values, so reject them here.
        if !(bytes.is_finite() && bytes > 0.0) {
            return;
        }
        if let Some(acc) = self.sent_acc.get_mut(layer) {
            *acc += bytes;
        }
    }

    /// Record a detected loss of `bytes` that had been sent for `layer`.
    /// With delivery-based crediting a lost packet was never credited, so
    /// no debit is needed; the hook exists for transports that credit
    /// optimistically (none of the bundled ones do) and for symmetry.
    pub fn on_packet_lost(&mut self, _layer: usize, _bytes: f64) {}

    /// Congestion-control backoff: the transmission rate fell to
    /// `post_rate`. Runs the §2.2 drop rule and arms the draining path.
    pub fn on_backoff(&mut self, now: f64, post_rate: f64) {
        // A congestion controller in an RTO storm can report a collapsed
        // rate of 0; anything non-finite or negative is treated the same —
        // the worst legal input, which the drop rule resolves by shedding
        // layers rather than corrupting state.
        let post_rate = if post_rate.is_finite() {
            post_rate.max(0.0)
        } else {
            0.0
        };
        laqa_obs::counter!("qa.backoffs").inc();
        if laqa_obs::flight::enabled() {
            laqa_obs::flight::instant("qa.backoff", now, post_rate);
        }
        let phase_before = self.phase;
        self.peak_rate = self.last_rate.max(post_rate);
        self.drain_seq = None; // floors must be re-derived at the new peak
        let total = self.total_buffer();
        let n_drop = drop_count(
            self.n_active,
            self.cfg.layer_rate,
            post_rate,
            self.slope,
            total,
        );
        for _ in 0..n_drop {
            self.drop_top_layer(now, post_rate, DropReason::InsufficientTotalBuffer);
        }
        if post_rate < self.cfg.consumption(self.n_active) {
            self.phase = Phase::Draining;
        }
        self.note_phase_transition(now, phase_before);
        self.last_rate = post_rate;
    }

    /// Choose the layer for the next packet of `pkt_bytes` bytes and charge
    /// its credit. Ties favour the lowest layer, so with equal allocations
    /// the base layer is served first.
    pub fn next_packet_layer(&mut self, pkt_bytes: f64) -> usize {
        let mut best = 0usize;
        let mut best_credit = f64::NEG_INFINITY;
        for (i, &c) in self.credits.iter().enumerate().take(self.n_active) {
            if c > best_credit {
                best_credit = c;
                best = i;
            }
        }
        self.credits[best] -= pkt_bytes;
        best
    }

    /// Run one allocation period: settle the accounting for the `dt`
    /// seconds that just elapsed, make add/drop decisions, and compute the
    /// per-layer rates for the next period at transmission rate `rate`.
    pub fn tick(&mut self, now: f64, rate: f64, dt: f64) -> TickReport {
        // Sanitize adverse inputs (§2.2: every critical situation must be
        // resolved by dropping layers, never by panicking or corrupting the
        // accounting). A non-finite rate is treated as 0 — the draining
        // path then sheds layers; a non-finite or negative dt settles no
        // time at all.
        let rate = if rate.is_finite() { rate.max(0.0) } else { 0.0 };
        let dt = if dt.is_finite() { dt.max(0.0) } else { 0.0 };
        laqa_obs::counter!("qa.ticks").inc();
        let phase_before = self.phase;
        let c = self.cfg.layer_rate;
        if !self.playing {
            // Playout begins once the base layer has banked the configured
            // startup buffer (sent bytes count: they are in flight or
            // already delivered).
            let base = self.bufs[0] + self.sent_acc[0];
            if base >= c * self.cfg.startup_buffer_secs {
                self.playing = true;
            }
        }
        let mut stalled = false;
        let mut dropped = 0usize;

        // 1. Settle buffer accounting for the elapsed period. The estimate
        // is a fluid model of a packetized stream and is allowed to carry a
        // small *debt* (down to −underflow_slack) before an underflow is
        // declared; clamping small negatives to zero every tick would mint
        // phantom buffer at exactly the layer consumption rate.
        let consume = if self.playing { c * dt } else { 0.0 };
        let slack = self.cfg.underflow_slack_bytes;
        let mut top_underflow = false;
        for i in 0..self.n_active {
            self.bufs[i] += self.sent_acc[i] - consume;
            self.sent_acc[i] = 0.0;
            if self.bufs[i] < -slack - self.cfg.epsilon_bytes {
                if i == 0 {
                    stalled = true;
                    self.metrics.record(QaEvent::BaseStall { time: now });
                    laqa_obs::counter!("qa.base_stalls").inc();
                    laqa_obs::event!(
                        laqa_obs::Level::Warn,
                        "qa.base_stall",
                        now,
                        "rate" => rate,
                    );
                    if laqa_obs::flight::enabled() {
                        laqa_obs::flight::instant("qa.base_stall", now, rate);
                    }
                } else {
                    top_underflow = true;
                }
                // The missed data is skipped; the debt is written off.
                self.bufs[i] = 0.0;
            }
        }
        if top_underflow && self.n_active > 1 {
            self.drop_top_layer(now, rate, DropReason::Underflow);
            dropped += 1;
        }
        // The base layer sliding into debt is itself a critical situation
        // (§2.2): quality yields before continuity. Shed the top layer once
        // the debt crosses half the slack instead of letting the remaining
        // margin burn while upper layers still hold allocation — past this
        // point the whole transmission rate belongs to the base.
        if self.n_active > 1 && self.bufs[0] < -0.5 * slack {
            self.drop_top_layer(now, rate, DropReason::Underflow);
            dropped += 1;
        }

        // 2. Phase and decisions.
        let mut added = 0usize;
        let consumption = self.cfg.consumption(self.n_active);
        // Base-layer protection floor: the underflow slack is the margin
        // the stall detector above grants the fluid model, so a base buffer
        // within a quarter-slack of that line is one bad period away from a
        // visible stall. Below the floor, allocation policy bends toward
        // the base layer (see both branches); while filling the trigger is
        // an outright debt, since the state-path allocator already feeds
        // the base first.
        let protect = 0.75 * slack;
        if rate >= consumption {
            self.phase = Phase::Filling;
            // Build the filling path at the current rate and allocate. The
            // sequences are rebuilt in place into scratch storage: ticks
            // run every period on the transport's hot path, and recycling
            // the state vectors keeps the tick allocation-free.
            let mut seq = std::mem::take(&mut self.fill_scratch);
            self.rebuild_fill(&mut seq, rate, self.n_active);
            let mut alloc = allocate_filling(
                &seq,
                &self.bufs,
                rate,
                dt,
                self.cfg.k_max,
                self.cfg.epsilon_bytes,
            );
            // Add at most one layer per tick (the paper adds layers one at
            // a time; rationing the ramp also keeps a startup rate
            // overestimate from instantiating the whole encoding at once).
            let mut next_seq = std::mem::take(&mut self.next_scratch);
            self.rebuild_fill(&mut next_seq, rate, self.n_active + 1);
            let check = check_add(
                &seq,
                &next_seq,
                &AddInputs {
                    bufs: &self.bufs,
                    rate,
                    n_active: self.n_active,
                    max_layers: self.cfg.max_layers,
                    k_max: self.cfg.k_max,
                    eps: self.cfg.epsilon_bytes,
                },
            );
            self.next_scratch = next_seq;
            if check.all_ok() {
                self.add_layer(now);
                added += 1;
                if rate >= self.cfg.consumption(self.n_active) {
                    self.rebuild_fill(&mut seq, rate, self.n_active);
                    alloc = allocate_filling(
                        &seq,
                        &self.bufs,
                        rate,
                        dt,
                        self.cfg.k_max,
                        self.cfg.epsilon_bytes,
                    );
                }
            }
            self.fill_scratch = seq;
            self.alloc_rates = alloc.per_layer_rate;
            // Base-layer protection while filling: the state path invests
            // excess across all layers' targets, but with the base buffer
            // near empty (e.g. right after a deep drop cascade) the §2.3
            // priority applies — base buffering protects against every
            // deeper drop, so the whole excess goes there until the floor
            // is cleared.
            if self.n_active > 1 && self.bufs[0] < 0.0 {
                let c_total = self.cfg.consumption(self.n_active);
                let boost = (rate - c_total).max(0.0);
                for r in self.alloc_rates.iter_mut() {
                    *r = c;
                }
                self.alloc_rates[0] = c + boost;
                laqa_obs::counter!("qa.base_protect_ticks").inc();
            }
        } else {
            self.phase = Phase::Draining;
            // §2.2 drop rule re-checked during the draining phase (rate may
            // keep falling, or the slope estimate may have changed).
            let n_drop = drop_count(self.n_active, c, rate, self.slope, self.total_buffer());
            for _ in 0..n_drop {
                self.drop_top_layer(now, rate, DropReason::InsufficientTotalBuffer);
                dropped += 1;
            }
            // Plan the period's draining; a shortfall is a critical
            // situation (§2.2) resolved by dropping more layers. Shortfalls
            // below half a layer-period are packetization slivers (a layer
            // whose fluid estimate is a few bytes in debt), absorbed by the
            // receiver's real buffer — only a miss of at least half a
            // band's worth of data is a genuine distribution failure.
            let critical = (0.5 * c * dt).max(self.cfg.epsilon_bytes);
            loop {
                self.ensure_drain_seq();
                let seq = self.drain_seq.as_ref().expect("just built");
                let plan = plan_draining(seq, &self.bufs, rate, dt, self.cfg.epsilon_bytes);
                if plan.shortfall <= critical || self.n_active == 1 {
                    self.alloc_rates = plan.per_layer_rate;
                    break;
                }
                self.drop_top_layer(now, rate, DropReason::DistributionShortfall);
                dropped += 1;
            }
            // Base-layer protection: the band profile (§2.4) deliberately
            // serves the top of the stack from the network and drains the
            // bottom from buffers, but once the base buffer has sunk below
            // the underflow slack a further tick of that policy risks a
            // visible stall. Steer send rate to the base layer first, taking
            // it from the top layers' allocations (their buffered remnant is
            // the first thing written off in a drop anyway).
            if self.n_active > 1 && self.bufs[0] < protect {
                let want = (c.min(rate) - self.alloc_rates[0]).max(0.0);
                if want > 0.0 {
                    let mut need = want;
                    for i in (1..self.n_active).rev() {
                        let take = self.alloc_rates[i].min(need);
                        self.alloc_rates[i] -= take;
                        need -= take;
                        if need <= 0.0 {
                            break;
                        }
                    }
                    self.alloc_rates[0] += want - need;
                    laqa_obs::counter!("qa.base_protect_ticks").inc();
                }
            }
        }

        // 3. Refill the packet scheduler's credits.
        self.credits.resize(self.n_active, 0.0);
        for (credit, &r) in self.credits.iter_mut().zip(self.alloc_rates.iter()) {
            // Cap accumulated credit at two periods' worth so a transport
            // that sends slower than allocated cannot bank unbounded credit.
            *credit = (*credit + r * dt).min(2.0 * r.max(c) * dt);
        }

        self.note_phase_transition(now, phase_before);
        self.last_rate = rate;
        if self.phase == Phase::Filling {
            self.peak_rate = self.peak_rate.max(rate);
        }
        if laqa_obs::flight::enabled() {
            // Buffer-level series: the paper's fill/drain trajectories,
            // one sample per allocation period.
            laqa_obs::flight::sample("qa.buf_base", now, self.bufs[0]);
            laqa_obs::flight::sample("qa.buf_total", now, self.total_buffer());
        }
        TickReport {
            phase: self.phase,
            n_active: self.n_active,
            per_layer_rate: self.alloc_rates.clone(),
            added,
            dropped,
            stalled,
        }
    }

    /// Rebuild `seq` in place as the filling path for `n_active` layers at
    /// `rate` (scratch-reuse form of the old per-tick `StateSequence::build`).
    fn rebuild_fill(&self, seq: &mut StateSequence, rate: f64, n_active: usize) {
        self.rebuild_seq(seq, rate, n_active);
    }

    /// Route a rebuild through the shared geometry memo when one is
    /// attached, falling back to a direct [`StateSequence::rebuild`]. The
    /// resulting sequence is bit-identical on both paths (the cache keys
    /// on exact float bit patterns), so attaching a cache can never
    /// change a trajectory.
    fn rebuild_seq(&self, seq: &mut StateSequence, rate: f64, n_active: usize) {
        if let Some(cache) = &self.geo_cache {
            cache
                .lock()
                .expect("geometry cache poisoned")
                .rebuild_memoized_with(
                    seq,
                    rate,
                    n_active,
                    self.cfg.layer_rate,
                    self.slope,
                    self.cfg.fill_horizon_backoffs,
                    self.cfg.decrease_factor,
                );
        } else {
            seq.rebuild_with(
                rate,
                n_active,
                self.cfg.layer_rate,
                self.slope,
                self.cfg.fill_horizon_backoffs,
                self.cfg.decrease_factor,
            );
        }
    }

    /// Attach a shared geometry memo cache (campaign workers share one per
    /// worker across all sessions they run). Pass-through for results:
    /// controller trajectories are unchanged by construction.
    pub fn set_geometry_cache(&mut self, cache: crate::SharedGeometryCache) {
        self.geo_cache = Some(cache);
    }

    /// Make `self.drain_seq` current for the present peak rate and layer
    /// count, rebuilding in place (reusing its allocations) when stale.
    fn ensure_drain_seq(&mut self) {
        let peak = self.peak_rate.max(self.cfg.consumption(self.n_active));
        let stale = match &self.drain_seq {
            Some(seq) => seq.n_active != self.n_active || (seq.rate - peak).abs() > 1e-9,
            None => true,
        };
        if stale {
            let mut seq = self.drain_seq.take().unwrap_or_default();
            self.rebuild_seq(&mut seq, peak, self.n_active);
            self.drain_seq = Some(seq);
        }
    }

    /// Count and log a phase flip (observability only; no control effect).
    fn note_phase_transition(&mut self, now: f64, before: Phase) {
        if before != self.phase {
            laqa_obs::counter!("qa.phase_transitions").inc();
            if laqa_obs::flight::enabled() {
                // Opens the new QA-state span on this session's timeline
                // track (the exporter closes the previous one here).
                laqa_obs::flight::state(self.phase.label(), now);
            }
            laqa_obs::event!(
                laqa_obs::Level::Info,
                "qa.phase",
                now,
                "from" => before.label(),
                "to" => self.phase.label(),
                "n_active" => self.n_active,
            );
        }
    }

    fn add_layer(&mut self, now: f64) {
        self.n_active += 1;
        self.bufs.push(0.0);
        self.sent_acc.push(0.0);
        self.credits.push(0.0);
        self.drain_seq = None;
        self.metrics.record(QaEvent::LayerAdded {
            time: now,
            n_active: self.n_active,
        });
        laqa_obs::counter!("qa.layer_adds").inc();
        if laqa_obs::flight::enabled() {
            laqa_obs::flight::instant("qa.layer_add", now, self.n_active as f64);
        }
        laqa_obs::event!(
            laqa_obs::Level::Info,
            "qa.layer_add",
            now,
            "n_active" => self.n_active,
        );
    }

    fn drop_top_layer(&mut self, now: f64, rate: f64, reason: DropReason) {
        if self.n_active <= 1 {
            return;
        }
        let layer = self.n_active - 1;
        let buf_total = self.total_buffer();
        let buf_drop = self.bufs[layer].max(0.0);
        let required = required_recovery_buffer_with(
            self.n_active,
            self.cfg.layer_rate,
            rate,
            self.slope,
            self.cfg.decrease_factor,
        );
        self.n_active -= 1;
        // The stranded data still plays out, but it no longer contributes
        // to recovery; account it out of the buffer pool (§5 efficiency).
        self.bufs.truncate(self.n_active);
        self.sent_acc.truncate(self.n_active);
        self.credits.truncate(self.n_active);
        self.drain_seq = None;
        self.metrics.record(QaEvent::LayerDropped {
            time: now,
            layer,
            n_active: self.n_active,
            buf_total,
            buf_drop,
            required,
            reason,
        });
        laqa_obs::counter!("qa.layer_drops").inc();
        if laqa_obs::flight::enabled() {
            laqa_obs::flight::instant("qa.layer_drop", now, layer as f64);
        }
        match reason {
            DropReason::InsufficientTotalBuffer => {
                laqa_obs::counter!("qa.layer_drops.insufficient_total_buffer").inc()
            }
            DropReason::DistributionShortfall => {
                laqa_obs::counter!("qa.layer_drops.distribution_shortfall").inc()
            }
            DropReason::Underflow => laqa_obs::counter!("qa.layer_drops.underflow").inc(),
        }
        laqa_obs::event!(
            laqa_obs::Level::Info,
            "qa.layer_drop",
            now,
            "layer" => layer,
            "n_active" => self.n_active,
            "reason" => reason.label(),
            "buf_total" => buf_total,
            "buf_drop" => buf_drop,
            "required" => required,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const C: f64 = 10_000.0;

    fn cfg() -> QaConfig {
        QaConfig {
            layer_rate: C,
            max_layers: 8,
            k_max: 2,
            ..QaConfig::default()
        }
    }

    fn controller() -> QaController {
        QaController::new(cfg()).unwrap()
    }

    /// Drive the controller like a transport would: ticks at `dt`, sending
    /// exactly the allocated bytes per layer.
    fn drive(ctl: &mut QaController, now: &mut f64, rate: f64, dt: f64) -> TickReport {
        let report = ctl.tick(*now, rate, dt);
        for (layer, &r) in report.per_layer_rate.iter().enumerate() {
            ctl.on_packet_delivered(layer, r * dt);
        }
        *now += dt;
        report
    }

    #[test]
    fn starts_with_initial_layers() {
        let ctl = controller();
        assert_eq!(ctl.n_active(), 1);
        assert_eq!(ctl.phase(), Phase::Filling);
        assert_eq!(ctl.total_buffer(), 0.0);
    }

    #[test]
    fn filling_builds_buffers() {
        let mut ctl = controller();
        ctl.set_slope(25_000.0);
        let mut now = 0.0;
        for _ in 0..20 {
            drive(&mut ctl, &mut now, 15_000.0, 0.1);
        }
        assert!(
            ctl.total_buffer() > 0.0,
            "buffers should grow in filling phase"
        );
        assert_eq!(ctl.phase(), Phase::Filling);
    }

    #[test]
    fn adds_layer_when_conditions_met() {
        let mut ctl = controller();
        ctl.set_slope(25_000.0);
        let mut now = 0.0;
        let mut added_total = 0;
        // Plenty of bandwidth for two layers; buffers will fill and the
        // second layer should be added.
        for _ in 0..600 {
            let r = drive(&mut ctl, &mut now, 25_000.0, 0.1);
            added_total += r.added;
            if added_total > 0 {
                break;
            }
        }
        assert!(added_total >= 1, "expected a layer add");
        assert_eq!(ctl.n_active(), 2);
        assert_eq!(ctl.metrics().adds(), added_total);
    }

    #[test]
    fn no_add_without_bandwidth_headroom() {
        let mut ctl = controller();
        ctl.set_slope(25_000.0);
        let mut now = 0.0;
        // 15 KB/s: enough to fill base-layer buffers forever but never
        // enough instantaneous rate for a second layer (needs 20 KB/s).
        for _ in 0..1000 {
            let r = drive(&mut ctl, &mut now, 15_000.0, 0.1);
            assert_eq!(r.added, 0);
        }
        assert_eq!(ctl.n_active(), 1);
    }

    #[test]
    fn backoff_with_no_buffer_drops_layers() {
        let mut ctl = controller();
        ctl.set_slope(25_000.0);
        let mut now = 0.0;
        // Force three active layers with a generous rate.
        for _ in 0..3000 {
            drive(&mut ctl, &mut now, 35_000.0, 0.1);
            if ctl.n_active() == 3 {
                break;
            }
        }
        assert_eq!(ctl.n_active(), 3);
        // Artificially wipe the buffers, then back off hard: the §2.2 rule
        // must shed layers.
        for b in ctl.bufs.iter_mut() {
            *b = 0.0;
        }
        ctl.on_backoff(now, 10_000.0);
        assert!(ctl.n_active() < 3, "drop rule should shed layers");
        assert!(ctl.metrics().drops() > 0);
    }

    #[test]
    fn draining_steers_rate_to_a_starving_base_layer() {
        let mut ctl = controller();
        ctl.set_slope(25_000.0);
        let mut now = 0.0;
        for _ in 0..3000 {
            drive(&mut ctl, &mut now, 35_000.0, 0.1);
            if ctl.n_active() == 3 {
                break;
            }
        }
        assert_eq!(ctl.n_active(), 3);
        // Invert the distribution: base nearly dry (below the underflow
        // slack), upper layers holding plenty. The band profile alone would
        // keep draining the base toward a stall.
        ctl.bufs[0] = 500.0;
        ctl.bufs[1] = 5_000.0;
        ctl.bufs[2] = 20_000.0;
        let report = ctl.tick(now, 25_000.0, 0.1);
        assert_eq!(report.phase, Phase::Draining);
        assert_eq!(ctl.n_active(), 3);
        let alloc = ctl.allocation();
        assert!(
            (alloc[0] - C).abs() < 1e-6,
            "base must get its full consumption rate, got {alloc:?}"
        );
        assert!(
            alloc[2] < C - 1e-6,
            "the boost comes out of the top layer, got {alloc:?}"
        );
        assert!(alloc.iter().all(|&r| r >= 0.0), "no negative rates: {alloc:?}");
    }

    #[test]
    fn backoff_with_ample_buffer_keeps_layers() {
        let mut ctl = controller();
        ctl.set_slope(25_000.0);
        let mut now = 0.0;
        for _ in 0..3000 {
            drive(&mut ctl, &mut now, 35_000.0, 0.1);
            if ctl.n_active() == 3 {
                break;
            }
        }
        assert_eq!(ctl.n_active(), 3);
        // Long filling at high rate banks plenty of buffering.
        for _ in 0..400 {
            drive(&mut ctl, &mut now, 35_000.0, 0.1);
        }
        ctl.on_backoff(now, 22_500.0);
        assert_eq!(ctl.n_active(), 3, "buffers should absorb a single backoff");
        assert_eq!(ctl.phase(), Phase::Draining);
    }

    #[test]
    fn draining_consumes_buffers_and_recovers() {
        let mut ctl = controller();
        ctl.set_slope(25_000.0);
        let mut now = 0.0;
        for _ in 0..3000 {
            drive(&mut ctl, &mut now, 35_000.0, 0.1);
            if ctl.n_active() == 3 {
                break;
            }
        }
        for _ in 0..400 {
            drive(&mut ctl, &mut now, 35_000.0, 0.1);
        }
        let buf_before = ctl.total_buffer();
        ctl.on_backoff(now, 22_500.0);
        // Linear recovery at S = 25 KB/s²; consumption 30 KB/s.
        let mut rate = 22_500.0;
        let dt = 0.1;
        while rate < 30_000.0 {
            let r = drive(&mut ctl, &mut now, rate, dt);
            assert_eq!(r.phase, Phase::Draining);
            assert!(!r.stalled, "must not stall with ample buffers");
            rate += 25_000.0 * dt;
        }
        assert!(ctl.total_buffer() < buf_before, "draining must use buffer");
        assert_eq!(ctl.n_active(), 3);
        let r = drive(&mut ctl, &mut now, rate, dt);
        assert_eq!(r.phase, Phase::Filling);
    }

    #[test]
    fn credit_scheduler_tracks_allocation() {
        let mut ctl = controller();
        ctl.set_slope(25_000.0);
        let mut now = 0.0;
        for _ in 0..3000 {
            drive(&mut ctl, &mut now, 35_000.0, 0.1);
            if ctl.n_active() == 3 {
                break;
            }
        }
        // One tick, then draw packets: per-layer counts should approximate
        // the allocation proportions.
        let report = ctl.tick(now, 35_000.0, 1.0);
        let pkt = 500.0;
        let mut counts = vec![0usize; ctl.n_active()];
        let total_bytes: f64 = report.per_layer_rate.iter().sum::<f64>() * 1.0;
        let n_pkts = (total_bytes / pkt) as usize;
        for _ in 0..n_pkts {
            let layer = ctl.next_packet_layer(pkt);
            counts[layer] += 1;
        }
        for (i, &cnt) in counts.iter().enumerate() {
            let want = report.per_layer_rate[i] * 1.0 / pkt;
            assert!(
                (cnt as f64 - want).abs() <= 2.0,
                "layer {i}: {cnt} packets vs allocation {want}"
            );
        }
    }

    #[test]
    fn only_delivered_bytes_are_credited() {
        // Losses are never credited: a transport that sends X but only has
        // Y < X confirmed delivered yields a buffer estimate based on Y.
        let mut ctl = controller();
        ctl.set_slope(25_000.0);
        let mut now = 0.0;
        for _ in 0..50 {
            let report = ctl.tick(now, 20_000.0, 0.1);
            for (layer, &r) in report.per_layer_rate.iter().enumerate() {
                // 10% of the bytes are lost in transit: never delivered.
                ctl.on_packet_delivered(layer, 0.9 * r * 0.1);
                ctl.on_packet_lost(layer, 0.1 * r * 0.1);
            }
            now += 0.1;
        }
        // Compare to a lossless twin.
        let mut clean = controller();
        clean.set_slope(25_000.0);
        let mut now2 = 0.0;
        for _ in 0..50 {
            drive(&mut clean, &mut now2, 20_000.0, 0.1);
        }
        assert!(
            ctl.total_buffer() < clean.total_buffer(),
            "lossy path must credit less: {} vs {}",
            ctl.total_buffer(),
            clean.total_buffer()
        );
    }

    #[test]
    fn base_layer_stall_recorded_not_dropped() {
        let mut ctl = controller();
        ctl.set_slope(25_000.0);
        // Bank just past the startup buffer, then starve the base layer:
        // one second of consumption against ~0.6 s of data must stall.
        ctl.on_packet_delivered(0, 6_000.0);
        let _ = ctl.tick(0.0, 0.0, 0.0);
        let r = ctl.tick(1.0, 0.0, 1.0);
        assert!(r.stalled);
        assert_eq!(ctl.n_active(), 1);
        assert_eq!(ctl.metrics().stalls(), 1);
        assert_eq!(ctl.buffers()[0], 0.0);
    }

    #[test]
    fn playout_waits_for_startup_buffer() {
        let mut ctl = controller();
        ctl.set_slope(25_000.0);
        // Tiny trickle below the startup threshold: no consumption charged,
        // buffers only grow.
        ctl.on_packet_delivered(0, 1_000.0);
        let r = ctl.tick(0.5, 2_000.0, 0.5);
        assert!(!r.stalled);
        assert!((ctl.buffers()[0] - 1_000.0).abs() < 1e-9);
    }

    #[test]
    fn drop_events_capture_efficiency_inputs() {
        let mut ctl = controller();
        ctl.set_slope(25_000.0);
        let mut now = 0.0;
        for _ in 0..3000 {
            drive(&mut ctl, &mut now, 35_000.0, 0.1);
            if ctl.n_active() == 3 {
                break;
            }
        }
        for b in ctl.bufs.iter_mut() {
            *b = 0.0;
        }
        ctl.bufs[0] = 1_000.0;
        ctl.on_backoff(now, 5_000.0);
        let drops: Vec<_> = ctl
            .metrics()
            .events()
            .iter()
            .filter(|e| matches!(e, QaEvent::LayerDropped { .. }))
            .collect();
        assert!(!drops.is_empty());
        if let QaEvent::LayerDropped {
            buf_total,
            buf_drop,
            ..
        } = drops[0]
        {
            assert!(*buf_total >= *buf_drop);
        }
        assert!(ctl.metrics().efficiency().is_some());
    }

    #[test]
    fn never_drops_base_layer() {
        let mut ctl = controller();
        ctl.set_slope(25_000.0);
        ctl.on_backoff(0.0, 0.0);
        assert_eq!(ctl.n_active(), 1);
        let r = ctl.tick(0.1, 0.0, 0.1);
        assert_eq!(r.n_active, 1);
    }

    #[test]
    fn sawtooth_cycles_keep_quality_stable_once_buffered() {
        // A clean periodic sawtooth between 14 and 28 KB/s: two layers
        // (20 KB/s) are sustainable — each cycle banks more excess than a
        // backoff drains — while a third layer can never be added (peaks
        // stay below 30 KB/s). After warm-up the layer count must freeze.
        let mut ctl = controller();
        ctl.set_slope(25_000.0);
        let mut now = 0.0;
        let dt = 0.05;
        let mut rate: f64 = 14_000.0;
        let mut changes_after_warmup = 0;
        let warmup = 30.0;
        for _ in 0..6000 {
            if rate >= 28_000.0 {
                rate /= 2.0;
                ctl.on_backoff(now, rate);
            }
            let r = drive(&mut ctl, &mut now, rate, dt);
            if now > warmup {
                changes_after_warmup += r.added + r.dropped;
            }
            rate += 25_000.0 * dt;
        }
        assert_eq!(ctl.n_active(), 2, "should sustain exactly 2 layers");
        assert_eq!(
            changes_after_warmup, 0,
            "quality should be stable after warm-up"
        );
        assert_eq!(ctl.metrics().stalls(), 0);
    }

    #[test]
    fn gentler_decrease_factor_adds_layers_sooner() {
        // A controller told its transport backs off to 0.85·R anticipates
        // far smaller deficit triangles than one bracing for halvings, so
        // at the same steady rate it clears the §3.1 add condition first.
        let ticks_to_two_layers = |factor: f64| -> usize {
            let mut ctl = QaController::new(QaConfig {
                decrease_factor: factor,
                ..cfg()
            })
            .unwrap();
            ctl.set_slope(25_000.0);
            let mut now = 0.0;
            for i in 0..5000 {
                drive(&mut ctl, &mut now, 25_000.0, 0.1);
                if ctl.n_active() == 2 {
                    return i;
                }
            }
            usize::MAX
        };
        let t50 = ticks_to_two_layers(0.5);
        let t85 = ticks_to_two_layers(0.85);
        assert!(t50 < usize::MAX, "0.5 controller must eventually add");
        assert!(
            t85 < t50,
            "0.85 controller should add sooner: {t85} vs {t50} ticks"
        );
    }

    #[test]
    fn modem_link_effect_third_layer_part_time() {
        // §3.1's 2.9-layer-link argument: on a link whose average is between
        // 2 and 3 layers, the buffer-based add rule still streams the third
        // layer part of the time (the average-bandwidth rule never would).
        let mut ctl = controller();
        ctl.set_slope(25_000.0);
        let mut now = 0.0;
        let dt = 0.05;
        let mut rate: f64 = 19_000.0;
        let mut three_layer_time = 0.0;
        let mut total_time = 0.0;
        for _ in 0..20_000 {
            if rate >= 38_000.0 {
                rate /= 2.0;
                ctl.on_backoff(now, rate);
            }
            let r = drive(&mut ctl, &mut now, rate, dt);
            if now > 30.0 {
                total_time += dt;
                if r.n_active >= 3 {
                    three_layer_time += dt;
                }
            }
            rate += 25_000.0 * dt;
        }
        // Average rate is 28.5 KB/s = 2.85 layers; the third layer should be
        // up a meaningful fraction of the time.
        assert!(
            three_layer_time > 0.2 * total_time,
            "third layer up only {:.0}% of the time",
            100.0 * three_layer_time / total_time
        );
        assert_eq!(ctl.metrics().stalls(), 0, "base layer must never stall");
    }
}

#[cfg(test)]
mod boundary_tests {
    use super::*;
    use crate::config::QaConfig;

    #[test]
    fn add_blocked_at_encoding_maximum() {
        let cfg = QaConfig {
            layer_rate: 10_000.0,
            max_layers: 2,
            ..QaConfig::default()
        };
        let mut ctl = QaController::new(cfg).unwrap();
        ctl.set_slope(25_000.0);
        let mut now = 0.0;
        for _ in 0..2000 {
            let r = ctl.tick(now, 100_000.0, 0.1);
            for (layer, &rate) in r.per_layer_rate.iter().enumerate() {
                ctl.on_packet_delivered(layer, rate * 0.1);
            }
            now += 0.1;
        }
        assert_eq!(ctl.n_active(), 2, "must stop at max_layers");
    }

    #[test]
    fn rate_exactly_at_consumption_is_filling() {
        let mut ctl = QaController::new(QaConfig::default()).unwrap();
        ctl.set_slope(25_000.0);
        let r = ctl.tick(0.0, 10_000.0, 0.1); // 1 layer * 10 KB/s exactly
        assert_eq!(r.phase, Phase::Filling);
        // At exact parity there is no excess: allocation == consumption.
        assert!((r.per_layer_rate[0] - 10_000.0).abs() < 1e-9);
    }

    #[test]
    fn allocation_accessor_matches_last_report() {
        let mut ctl = QaController::new(QaConfig::default()).unwrap();
        ctl.set_slope(25_000.0);
        let r = ctl.tick(0.0, 25_000.0, 0.1);
        assert_eq!(ctl.allocation(), r.per_layer_rate.as_slice());
    }

    #[test]
    fn metrics_mut_allows_draining_events() {
        let mut ctl = QaController::new(QaConfig::default()).unwrap();
        ctl.set_slope(25_000.0);
        let mut now = 0.0;
        for _ in 0..600 {
            let r = ctl.tick(now, 25_000.0, 0.1);
            for (layer, &rate) in r.per_layer_rate.iter().enumerate() {
                ctl.on_packet_delivered(layer, rate * 0.1);
            }
            now += 0.1;
        }
        let events = ctl.metrics_mut().take_events();
        assert!(!events.is_empty(), "adds should have been recorded");
        assert!(ctl.metrics().events().is_empty(), "drained");
    }

    #[test]
    fn adversarial_inputs_never_panic_or_kill_base_layer() {
        // Fault-injected transports can report collapsed, negative, huge or
        // non-finite rates and degenerate tick intervals. Whatever arrives,
        // the controller must resolve it by dropping layers (never below the
        // base layer), keep every estimate finite, and never panic.
        let mut ctl = QaController::new(QaConfig {
            layer_rate: 10_000.0,
            max_layers: 8,
            k_max: 2,
            ..QaConfig::default()
        })
        .unwrap();
        let mut state: u64 = 0xDEAD_BEEF_CAFE_F00D;
        let mut rand = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 40) as f64 / (1u64 << 24) as f64
        };
        let hostile = |u: f64, scale: f64| match (u * 8.0) as u32 {
            0 => f64::NAN,
            1 => f64::INFINITY,
            2 => f64::NEG_INFINITY,
            3 => -scale,
            4 => 0.0,
            5 => scale * 1e9,
            _ => u * scale,
        };
        let mut now = 0.0;
        for i in 0..20_000 {
            match (rand() * 4.0) as u32 {
                0 => ctl.on_backoff(now, hostile(rand(), 60_000.0)),
                1 => {
                    let rate = hostile(rand(), 60_000.0);
                    let dt = hostile(rand(), 0.5);
                    let r = ctl.tick(now, rate, dt);
                    assert!(
                        r.per_layer_rate.iter().all(|x| x.is_finite() && *x >= 0.0),
                        "op {i}: allocation corrupted: {:?}",
                        r.per_layer_rate
                    );
                    now += 0.01;
                }
                2 => ctl.on_packet_delivered((rand() * 10.0) as usize, hostile(rand(), 50_000.0)),
                _ => {
                    ctl.set_slope(hostile(rand(), 25_000.0));
                    let _ = ctl.next_packet_layer(1_000.0);
                }
            }
            assert!(ctl.n_active() >= 1, "op {i}: base layer must survive");
            assert!(
                ctl.buffers().iter().all(|b| b.is_finite()),
                "op {i}: buffer estimate corrupted: {:?}",
                ctl.buffers()
            );
        }
        // After the storm the controller still works on sane inputs.
        ctl.set_slope(25_000.0);
        let r = ctl.tick(now, 25_000.0, 0.1);
        assert!(r.n_active >= 1);
        assert!(r.per_layer_rate.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn non_finite_slope_falls_back_to_minimum() {
        let mut ctl = QaController::new(QaConfig::default()).unwrap();
        ctl.set_slope(f64::NAN);
        let r = ctl.tick(0.0, 25_000.0, 0.1);
        assert!(r.per_layer_rate.iter().all(|x| x.is_finite()));
        ctl.set_slope(f64::INFINITY);
        let r = ctl.tick(0.1, 25_000.0, 0.1);
        assert!(r.per_layer_rate.iter().all(|x| x.is_finite()));
    }
}
