//! Time series: the raw material of every figure.


/// A named `(time, value)` series.
#[derive(Debug, Clone, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TimeSeries {
    /// Series name (used as a CSV column header).
    pub name: String,
    /// Sample points, in insertion order (normally time-sorted).
    pub points: Vec<(f64, f64)>,
}

impl TimeSeries {
    /// New empty series.
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Append a sample.
    pub fn push(&mut self, t: f64, v: f64) {
        self.points.push((t, v));
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the series has no samples.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Minimum value, if any.
    pub fn min(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|&(_, v)| v)
            .fold(None, |m, v| Some(m.map_or(v, |m: f64| m.min(v))))
    }

    /// Maximum value, if any.
    pub fn max(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|&(_, v)| v)
            .fold(None, |m, v| Some(m.map_or(v, |m: f64| m.max(v))))
    }

    /// Arithmetic mean of the values, if any.
    pub fn mean(&self) -> Option<f64> {
        if self.points.is_empty() {
            return None;
        }
        Some(self.points.iter().map(|&(_, v)| v).sum::<f64>() / self.points.len() as f64)
    }

    /// Time-weighted mean over the sampled span (treats the series as a
    /// step function held between samples). `None` with fewer than two
    /// samples.
    pub fn time_weighted_mean(&self) -> Option<f64> {
        if self.points.len() < 2 {
            return None;
        }
        let mut area = 0.0;
        let mut span = 0.0;
        for w in self.points.windows(2) {
            let dt = w[1].0 - w[0].0;
            if dt > 0.0 {
                area += w[0].1 * dt;
                span += dt;
            }
        }
        (span > 0.0).then(|| area / span)
    }

    /// Fraction of (time-weighted) span where the value satisfies `pred`.
    pub fn fraction_where(&self, pred: impl Fn(f64) -> bool) -> Option<f64> {
        if self.points.len() < 2 {
            return None;
        }
        let mut hit = 0.0;
        let mut span = 0.0;
        for w in self.points.windows(2) {
            let dt = w[1].0 - w[0].0;
            if dt > 0.0 {
                span += dt;
                if pred(w[0].1) {
                    hit += dt;
                }
            }
        }
        (span > 0.0).then(|| hit / span)
    }

    /// Value at time `t` (step interpolation; `None` before the first
    /// sample).
    pub fn at(&self, t: f64) -> Option<f64> {
        let mut last = None;
        for &(pt, pv) in &self.points {
            if pt > t {
                break;
            }
            last = Some(pv);
        }
        last
    }
}

/// Converts discrete byte events into a rate series by binning: each bin of
/// width `bin` seconds yields one sample `(bin_start, bytes_in_bin / bin)`.
#[derive(Debug, Clone)]
pub struct RateBinner {
    bin: f64,
    current_bin: i64,
    acc: f64,
    series: TimeSeries,
}

impl RateBinner {
    /// New binner with bins of `bin` seconds.
    pub fn new(name: impl Into<String>, bin: f64) -> Self {
        assert!(bin > 0.0);
        RateBinner {
            bin,
            current_bin: 0,
            acc: 0.0,
            series: TimeSeries::new(name),
        }
    }

    /// Record `bytes` at time `t`.
    pub fn add(&mut self, t: f64, bytes: f64) {
        let idx = (t / self.bin).floor() as i64;
        while idx > self.current_bin {
            let start = self.current_bin as f64 * self.bin;
            self.series.push(start, self.acc / self.bin);
            self.acc = 0.0;
            self.current_bin += 1;
        }
        self.acc += bytes;
    }

    /// Flush the open bin and return the completed series.
    pub fn finish(mut self, end_time: f64) -> TimeSeries {
        let end_idx = (end_time / self.bin).ceil() as i64;
        while self.current_bin < end_idx {
            let start = self.current_bin as f64 * self.bin;
            self.series.push(start, self.acc / self.bin);
            self.acc = 0.0;
            self.current_bin += 1;
        }
        self.series
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_stats() {
        let mut s = TimeSeries::new("x");
        s.push(0.0, 1.0);
        s.push(1.0, 3.0);
        s.push(2.0, 2.0);
        assert_eq!(s.len(), 3);
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(3.0));
        assert_eq!(s.mean(), Some(2.0));
    }

    #[test]
    fn empty_stats_are_none() {
        let s = TimeSeries::new("x");
        assert!(s.is_empty());
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.mean(), None);
        assert_eq!(s.time_weighted_mean(), None);
    }

    #[test]
    fn time_weighted_mean_weights_held_values() {
        let mut s = TimeSeries::new("x");
        s.push(0.0, 10.0); // held for 9 s
        s.push(9.0, 0.0); // held for 1 s
        s.push(10.0, 99.0); // terminal sample, zero weight
        assert_eq!(s.time_weighted_mean(), Some(9.0));
    }

    #[test]
    fn fraction_where_counts_span() {
        let mut s = TimeSeries::new("x");
        s.push(0.0, 3.0);
        s.push(4.0, 2.0);
        s.push(10.0, 3.0);
        let f = s.fraction_where(|v| v >= 3.0).unwrap();
        assert!((f - 0.4).abs() < 1e-12);
    }

    #[test]
    fn step_interpolation() {
        let mut s = TimeSeries::new("x");
        s.push(1.0, 10.0);
        s.push(2.0, 20.0);
        assert_eq!(s.at(0.5), None);
        assert_eq!(s.at(1.0), Some(10.0));
        assert_eq!(s.at(1.9), Some(10.0));
        assert_eq!(s.at(5.0), Some(20.0));
    }

    #[test]
    fn rate_binner_converts_bytes_to_rate() {
        let mut b = RateBinner::new("rate", 1.0);
        b.add(0.1, 500.0);
        b.add(0.9, 500.0);
        b.add(1.5, 2_000.0);
        let s = b.finish(3.0);
        assert_eq!(s.points.len(), 3);
        assert_eq!(s.points[0], (0.0, 1_000.0));
        assert_eq!(s.points[1], (1.0, 2_000.0));
        assert_eq!(s.points[2], (2.0, 0.0));
    }

    #[test]
    fn rate_binner_skips_empty_bins_with_zeros() {
        let mut b = RateBinner::new("rate", 0.5);
        b.add(0.1, 100.0);
        b.add(2.1, 100.0);
        let s = b.finish(2.5);
        assert_eq!(s.points.len(), 5);
        assert_eq!(s.points[1].1, 0.0);
        assert_eq!(s.points[2].1, 0.0);
        assert_eq!(s.points[3].1, 0.0);
        assert_eq!(s.points[4].1, 200.0);
    }
}
