//! Wire format for RAP/QA streaming over UDP.
//!
//! One datagram = one message. Fixed little-endian headers via `bytes`,
//! with a one-byte message tag:
//!
//! ```text
//! DATA  (0xD1): flow u32 | seq u64 | layer u8 | n_active u8 |
//!               send_ts_us u64 | payload_len u16 | payload bytes
//! ACK   (0xA1): flow u32 | ack_seq u64 | cum u64 | highest u64 | mask u64
//! HELLO (0xC1): flow u32  — client subscribes to the stream
//! FIN   (0xF1): flow u32  — server ends the session
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};
use laqa_rap::AckInfo;

/// Message tag bytes.
const TAG_DATA: u8 = 0xD1;
const TAG_ACK: u8 = 0xA1;
const TAG_HELLO: u8 = 0xC1;
const TAG_FIN: u8 = 0xF1;

/// Header size of a DATA message (tag + flow + seq + layer + n_active +
/// ts + len).
pub const DATA_HEADER_LEN: usize = 1 + 4 + 8 + 1 + 1 + 8 + 2;

/// Decoding errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Datagram too short for its message type.
    Truncated,
    /// Unknown message tag.
    BadTag(u8),
    /// Payload length field exceeds the datagram.
    BadLength,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "datagram truncated"),
            WireError::BadTag(t) => write!(f, "unknown message tag {t:#x}"),
            WireError::BadLength => write!(f, "payload length exceeds datagram"),
        }
    }
}

impl std::error::Error for WireError {}

/// A decoded message.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Video data packet.
    Data {
        /// Flow id.
        flow: u32,
        /// RAP sequence number.
        seq: u64,
        /// Layer index the payload belongs to.
        layer: u8,
        /// Active layer count at the server (in-band add/drop signal).
        n_active: u8,
        /// Sender timestamp (µs since session start).
        send_ts_us: u64,
        /// Media payload.
        payload: Bytes,
    },
    /// RAP acknowledgement.
    Ack {
        /// Flow id.
        flow: u32,
        /// Reception info.
        info: AckInfo,
    },
    /// Client subscription.
    Hello {
        /// Flow id the client requests.
        flow: u32,
    },
    /// End of session.
    Fin {
        /// Flow id.
        flow: u32,
    },
}

impl Message {
    /// Encode into a fresh buffer.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(64);
        match self {
            Message::Data {
                flow,
                seq,
                layer,
                n_active,
                send_ts_us,
                payload,
            } => {
                b.put_u8(TAG_DATA);
                b.put_u32_le(*flow);
                b.put_u64_le(*seq);
                b.put_u8(*layer);
                b.put_u8(*n_active);
                b.put_u64_le(*send_ts_us);
                b.put_u16_le(payload.len() as u16);
                b.extend_from_slice(payload);
            }
            Message::Ack { flow, info } => {
                b.put_u8(TAG_ACK);
                b.put_u32_le(*flow);
                b.put_u64_le(info.ack_seq);
                b.put_u64_le(info.cum_seq);
                b.put_u64_le(info.highest);
                b.put_u64_le(info.mask);
            }
            Message::Hello { flow } => {
                b.put_u8(TAG_HELLO);
                b.put_u32_le(*flow);
            }
            Message::Fin { flow } => {
                b.put_u8(TAG_FIN);
                b.put_u32_le(*flow);
            }
        }
        b.freeze()
    }

    /// Decode a datagram.
    pub fn decode(mut buf: Bytes) -> Result<Message, WireError> {
        if buf.remaining() < 5 {
            return Err(WireError::Truncated);
        }
        let tag = buf.get_u8();
        let flow = buf.get_u32_le();
        match tag {
            TAG_DATA => {
                if buf.remaining() < DATA_HEADER_LEN - 5 {
                    return Err(WireError::Truncated);
                }
                let seq = buf.get_u64_le();
                let layer = buf.get_u8();
                let n_active = buf.get_u8();
                let send_ts_us = buf.get_u64_le();
                let len = buf.get_u16_le() as usize;
                if buf.remaining() < len {
                    return Err(WireError::BadLength);
                }
                let payload = buf.split_to(len);
                Ok(Message::Data {
                    flow,
                    seq,
                    layer,
                    n_active,
                    send_ts_us,
                    payload,
                })
            }
            TAG_ACK => {
                if buf.remaining() < 32 {
                    return Err(WireError::Truncated);
                }
                let ack_seq = buf.get_u64_le();
                let cum_seq = buf.get_u64_le();
                let highest = buf.get_u64_le();
                let mask = buf.get_u64_le();
                Ok(Message::Ack {
                    flow,
                    info: AckInfo {
                        ack_seq,
                        cum_seq,
                        highest,
                        mask,
                    },
                })
            }
            TAG_HELLO => Ok(Message::Hello { flow }),
            TAG_FIN => Ok(Message::Fin { flow }),
            other => Err(WireError::BadTag(other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_round_trip() {
        let m = Message::Data {
            flow: 7,
            seq: 123456789,
            layer: 3,
            n_active: 5,
            send_ts_us: 42_000_000,
            payload: Bytes::from_static(b"hello video"),
        };
        assert_eq!(Message::decode(m.encode()).unwrap(), m);
    }

    #[test]
    fn ack_round_trip() {
        let m = Message::Ack {
            flow: 1,
            info: AckInfo {
                ack_seq: 9,
                cum_seq: 7,
                highest: 9,
                mask: 0b1011,
            },
        };
        assert_eq!(Message::decode(m.encode()).unwrap(), m);
    }

    #[test]
    fn hello_fin_round_trip() {
        for m in [Message::Hello { flow: 3 }, Message::Fin { flow: 3 }] {
            assert_eq!(Message::decode(m.encode()).unwrap(), m);
        }
    }

    #[test]
    fn rejects_truncated() {
        assert_eq!(
            Message::decode(Bytes::from_static(b"\xD1\x01")),
            Err(WireError::Truncated)
        );
        let mut ok = Message::Ack {
            flow: 1,
            info: AckInfo {
                ack_seq: 1,
                cum_seq: 0,
                highest: 1,
                mask: 0,
            },
        }
        .encode()
        .to_vec();
        ok.truncate(20);
        assert_eq!(Message::decode(Bytes::from(ok)), Err(WireError::Truncated));
    }

    #[test]
    fn rejects_bad_tag() {
        assert_eq!(
            Message::decode(Bytes::from_static(b"\x99\x00\x00\x00\x00")),
            Err(WireError::BadTag(0x99))
        );
    }

    #[test]
    fn rejects_bad_payload_length() {
        let m = Message::Data {
            flow: 1,
            seq: 1,
            layer: 0,
            n_active: 1,
            send_ts_us: 0,
            payload: Bytes::from_static(b"abcdef"),
        };
        let mut raw = m.encode().to_vec();
        let truncated = raw.len() - 3;
        raw.truncate(truncated);
        assert_eq!(Message::decode(Bytes::from(raw)), Err(WireError::BadLength));
    }

    #[test]
    fn data_header_len_matches_encoding() {
        let m = Message::Data {
            flow: 0,
            seq: 0,
            layer: 0,
            n_active: 0,
            send_ts_us: 0,
            payload: Bytes::new(),
        };
        assert_eq!(m.encode().len(), DATA_HEADER_LEN);
    }
}
