//! Property tests for the event schedulers, driven by `laqa_check`'s
//! seeded generator: random insert/pop/cancel workloads must drain in
//! strict `(time_ns, seq)` order on both implementations, and the two
//! implementations must agree item-for-item on every workload.

use laqa_check::{cases, Gen};
use laqa_sim::{EventKey, HeapScheduler, Scheduler, SchedulerKind, TimerWheelScheduler};

/// One scripted step of a scheduler workload.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Schedule at `now + delta_ns`.
    Insert { delta_ns: u64 },
    /// Pop the head (if any), advancing `now` to its deadline.
    Pop,
    /// Cancel the pending key at `index % pending.len()` (if any).
    Cancel { index: usize },
}

/// Generate a workload mixing near-future inserts, same-tick bursts,
/// far-future (overflow-tree) deadlines, pops, and cancels.
fn gen_ops(g: &mut Gen, len: usize) -> Vec<Op> {
    // ~268 ms of wheel horizon at 65.5 µs granularity; anything past
    // `1 << 28` ns lands in the overflow tree.
    const FAR: u64 = 40_000_000_000; // 40 s — deep overflow territory
    (0..len)
        .map(|_| match g.u32_in(0, 9) {
            // Dense near-future inserts, including zero-delay (same tick
            // as `now` — must still pop after already-due earlier seqs).
            0..=2 => Op::Insert {
                delta_ns: g.u64_in(0, 2_000_000),
            },
            // Same-tick burst: identical deadline, seq must break the tie.
            3 => Op::Insert { delta_ns: 65_536 },
            // Mid-range: within the wheel's slot horizon.
            4 => Op::Insert {
                delta_ns: g.u64_in(0, 200_000_000),
            },
            // Far future: overflow tree, up to a max-horizon outlier.
            5 => Op::Insert {
                delta_ns: g.u64_in(1 << 28, FAR),
            },
            6 | 7 => Op::Pop,
            _ => Op::Cancel {
                index: g.usize_in(0, 63),
            },
        })
        .collect()
}

/// Replay `ops` against `sched`, checking the strict drain order as we
/// go. Returns the popped `(time_ns, seq, item)` triples.
fn replay(sched: &mut dyn Scheduler<u64>, ops: &[Op]) -> Vec<(u64, u64, u64)> {
    let mut now = 0u64;
    let mut seq = 0u64;
    let mut pending: Vec<EventKey> = Vec::new();
    let mut popped = Vec::new();
    let mut last: Option<(u64, u64)> = None;
    for op in ops {
        match *op {
            Op::Insert { delta_ns } => {
                let key = sched.schedule(now + delta_ns, seq, seq);
                pending.push(key);
                seq += 1;
            }
            Op::Pop => {
                let peeked = sched.peek_next();
                if let Some((t, s, item)) = sched.pop_next() {
                    assert_eq!(peeked, Some((t, s)), "peek/pop disagree");
                    assert!(t >= now, "time went backwards: {t} < {now}");
                    if let Some(prev) = last {
                        assert!(
                            (t, s) > prev,
                            "drain order violated: {:?} after {prev:?}",
                            (t, s)
                        );
                    }
                    assert_eq!(item, s, "item/seq pairing corrupted");
                    last = Some((t, s));
                    now = t;
                    popped.push((t, s, item));
                }
            }
            Op::Cancel { index } => {
                if !pending.is_empty() {
                    let key = pending.swap_remove(index % pending.len());
                    // May be false if the event already popped — both
                    // impls must agree on that via the popped list.
                    sched.cancel(key);
                }
            }
        }
    }
    // Drain the rest; order must stay strict.
    while let Some((t, s, item)) = sched.pop_next() {
        if let Some(prev) = last {
            assert!((t, s) > prev, "tail drain order violated");
        }
        assert_eq!(item, s);
        last = Some((t, s));
        popped.push((t, s, item));
    }
    assert!(sched.is_empty(), "drained scheduler reports len {}", sched.len());
    popped
}

#[test]
fn random_workloads_drain_identically_on_both_schedulers() {
    cases("sched_differential_ops", 200, |g, case| {
        let len = g.usize_in(10, 400);
        let ops = gen_ops(g, len);
        let mut heap = HeapScheduler::<u64>::new();
        let mut wheel = TimerWheelScheduler::<u64>::new();
        let a = replay(&mut heap, &ops);
        let b = replay(&mut wheel, &ops);
        assert_eq!(a, b, "case {case}: wheel drain differs from heap oracle");
    });
}

#[test]
fn same_tick_bursts_drain_in_seq_order() {
    cases("sched_same_tick", 50, |g, _case| {
        let n = g.usize_in(2, 300);
        let t = g.u64_in(0, 1 << 40);
        for kind in SchedulerKind::ALL {
            let mut s = laqa_sim::AnyScheduler::<u64>::new(kind);
            for seq in 0..n as u64 {
                s.schedule(t, seq, seq);
            }
            for expect in 0..n as u64 {
                let (pt, ps, item) = s.pop_next().expect("burst entry");
                assert_eq!((pt, ps, item), (t, expect, expect), "{}", kind.label());
            }
            assert!(s.pop_next().is_none());
        }
    });
}

#[test]
fn max_horizon_far_future_events_survive_round_trip() {
    cases("sched_far_future", 50, |g, _case| {
        let mut wheel = TimerWheelScheduler::<u64>::new();
        // A near event, then outliers across the whole u64-safe horizon
        // (days of simulated time) that must pop in deadline order.
        let mut expect: Vec<(u64, u64)> = Vec::new();
        let n = g.usize_in(2, 40);
        for seq in 0..n as u64 {
            let t = if seq == 0 { 0 } else { g.u64_in(1, 1 << 50) };
            wheel.schedule(t, seq, seq);
            expect.push((t, seq));
        }
        expect.sort_unstable();
        for &(t, s) in &expect {
            assert_eq!(wheel.pop_next(), Some((t, s, s)));
        }
        assert!(wheel.is_empty());
    });
}

#[test]
fn cancel_is_exact_on_both_schedulers() {
    cases("sched_cancel", 100, |g, _case| {
        let n = g.usize_in(4, 100);
        let drop_mask: Vec<bool> = (0..n).map(|_| g.bool(0.5)).collect();
        // One shared deadline script so both scheduler kinds see the
        // exact same workload.
        let times: Vec<u64> = (0..n).map(|_| g.u64_in(0, 1 << 34)).collect();
        for kind in SchedulerKind::ALL {
            let mut s = laqa_sim::AnyScheduler::<u64>::new(kind);
            let mut keys = Vec::new();
            for seq in 0..n as u64 {
                let t = times[seq as usize];
                keys.push((s.schedule(t, seq, seq), t, seq));
            }
            let mut survivors: Vec<(u64, u64)> = Vec::new();
            for (i, (key, t, seq)) in keys.into_iter().enumerate() {
                if drop_mask[i] {
                    assert!(s.cancel(key), "{}: live cancel failed", kind.label());
                } else {
                    survivors.push((t, seq));
                }
            }
            survivors.sort_unstable();
            assert_eq!(s.len(), survivors.len(), "{}", kind.label());
            for (t, seq) in survivors {
                assert_eq!(s.pop_next(), Some((t, seq, seq)), "{}", kind.label());
            }
            assert!(s.pop_next().is_none());
        }
    });
}
