//! Link-bonding relay: stripes one flow's packets across two (or more)
//! parallel bottleneck paths with a deterministic policy.
//!
//! Models the sender-edge multipath scheduler of bonded-cellular setups:
//! the source addresses its packets to the relay over its access link;
//! the relay rewrites each packet's remaining route to one of the bonded
//! legs (strict round-robin) and forwards it to the real destination.
//! Because the legs follow independent trace schedules, their one-way
//! delays diverge and striping reorders packets at the receiver — exactly
//! the hostile reordering regime bonded links are known for (the
//! transport's reorder threshold decides what turns into spurious loss).
//!
//! The striping counter is the relay's only state and advances once per
//! forwarded packet, so the policy is a pure function of arrival order —
//! deterministic across schedulers, executors and thread counts like
//! everything else in the engine.

use crate::engine::{Agent, Ctx};
use crate::packet::{AgentId, Packet, Route};
use std::any::Any;

/// Deterministic round-robin striping relay (see the module docs).
pub struct BondAgent {
    /// Real destination the relay forwards to.
    pub dst: AgentId,
    /// Remaining route of each bonded leg (relay → destination).
    pub paths: Vec<Route>,
    /// Next leg to use (round-robin cursor).
    pub next: usize,
    /// Packets forwarded per leg (diagnostics + outcome hashing).
    pub forwarded: Vec<u64>,
}

impl BondAgent {
    /// Relay forwarding to `dst`, striping across `paths` in order.
    pub fn new(dst: AgentId, paths: Vec<Route>) -> Self {
        let forwarded = vec![0; paths.len()];
        BondAgent {
            dst,
            paths,
            next: 0,
            forwarded,
        }
    }
}

impl Agent for BondAgent {
    fn on_packet(&mut self, ctx: &mut Ctx, mut pkt: Packet) {
        let leg = self.next;
        self.next = (self.next + 1) % self.paths.len();
        self.forwarded[leg] += 1;
        pkt.dst = self.dst;
        pkt.route = self.paths[leg].clone();
        pkt.hop = 0;
        ctx.send(pkt);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::World;
    use crate::link::LinkConfig;
    use crate::packet::PacketKind;

    /// Sink counting arrivals per inbound route head.
    #[derive(Default)]
    struct RouteCounter {
        by_first_link: std::collections::BTreeMap<usize, u64>,
    }

    impl Agent for RouteCounter {
        fn on_packet(&mut self, _ctx: &mut Ctx, pkt: Packet) {
            let first = pkt.route.first().copied().unwrap_or(usize::MAX);
            *self.by_first_link.entry(first).or_insert(0) += 1;
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// Source firing `n` packets at t=0 toward the relay.
    struct Burst {
        relay: AgentId,
        route: Route,
        n: u64,
    }

    impl Agent for Burst {
        fn start(&mut self, ctx: &mut Ctx) {
            for _ in 0..self.n {
                let uid = ctx.alloc_uid();
                ctx.send(Packet {
                    uid,
                    flow: 0,
                    size: 100,
                    kind: PacketKind::Cbr,
                    dst: self.relay,
                    route: self.route.clone(),
                    hop: 0,
                    sent_at: 0.0,
                });
            }
        }
        fn on_packet(&mut self, _ctx: &mut Ctx, _pkt: Packet) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn stripes_round_robin_across_legs() {
        let mut w = World::new(1);
        let access = w.add_link(LinkConfig::uncongested());
        let leg_a = w.add_link(LinkConfig::uncongested());
        let leg_b = w.add_link(LinkConfig::uncongested());
        let sink = w.add_agent(Box::new(RouteCounter::default()));
        let relay = w.add_agent(Box::new(BondAgent::new(
            sink,
            vec![Route::from(vec![leg_a]), Route::from(vec![leg_b])],
        )));
        w.add_agent(Box::new(Burst {
            relay,
            route: Route::from(vec![access]),
            n: 9,
        }));
        w.run_until(1.0);
        let relay_ref: &BondAgent = w.agent(relay).unwrap();
        assert_eq!(relay_ref.forwarded, vec![5, 4], "strict round-robin");
        let counter: &RouteCounter = w.agent(sink).unwrap();
        assert_eq!(counter.by_first_link.get(&leg_a), Some(&5));
        assert_eq!(counter.by_first_link.get(&leg_b), Some(&4));
    }
}
