//! Criterion benchmarks for the RAP protocol machinery (per-packet and
//! per-ACK costs of figure 1's sender and the streaming endpoints).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use laqa_rap::{RapConfig, RapReceiverState, RapSender};

fn bench_receiver(c: &mut Criterion) {
    let mut g = c.benchmark_group("rap_receiver");
    g.bench_function("on_data_in_order", |b| {
        let mut rx = RapReceiverState::new();
        let mut seq = 0u64;
        b.iter(|| {
            let ack = rx.on_data(black_box(seq));
            seq += 1;
            ack
        })
    });
    g.bench_function("on_data_with_gaps", |b| {
        let mut rx = RapReceiverState::new();
        let mut seq = 0u64;
        b.iter(|| {
            // every 7th packet missing
            seq += if seq % 7 == 6 { 2 } else { 1 };
            rx.on_data(black_box(seq))
        })
    });
    g.finish();
}

fn bench_sender(c: &mut Criterion) {
    let mut g = c.benchmark_group("rap_sender");
    g.bench_function("register_send", |b| {
        let mut s = RapSender::new(RapConfig::default(), 0.0);
        let mut rx = RapReceiverState::new();
        let mut now = 0.0;
        b.iter(|| {
            let seq = s.register_send(now, 1_000.0, 0);
            // keep the history bounded: ack immediately
            s.on_ack(now + 0.01, rx.on_data(seq));
            s.take_events();
            now += 0.001;
            seq
        })
    });
    g.bench_function("ack_round_trip", |b| {
        let mut s = RapSender::new(RapConfig::default(), 0.0);
        let mut rx = RapReceiverState::new();
        let mut now = 0.0;
        b.iter(|| {
            now += 0.001;
            s.poll_timers(now);
            let seq = s.register_send(now, 1_000.0, 0);
            let ack = rx.on_data(black_box(seq));
            s.on_ack(now + 0.04, ack);
            s.take_events().len()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_receiver, bench_sender);
criterion_main!(benches);
