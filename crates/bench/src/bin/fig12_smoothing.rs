//! **Figure 12** — effect of the smoothing factor `K_max` on buffering and
//! quality.
//!
//! Repeats the T1 run with `K_max ∈ {2, 3, 4}` and reports, per run: the
//! number of quality changes (fewer with higher `K_max`), the total amount
//! of buffering accumulated (more with higher `K_max`), and how much of it
//! sits in higher layers (more with higher `K_max`).

use laqa_bench::{ascii_plot, outdir, window_changes};
use laqa_sim::{run_scenario, ScenarioConfig};
use laqa_trace::{Recorder, RunSummary, Table};

fn main() {
    let duration = 60.0;
    let seed = 7;
    let mut tbl = Table::new(
        "Figure 12: K_max sweep (T1, steady state t>15s)",
        &[
            "K_max",
            "quality changes",
            "peak total buf (B)",
            "mean layers",
            "upper-layer buf share",
            "stalls",
        ],
    );
    let dir = outdir("fig12");
    let mut rec = Recorder::new();

    for k_max in [2u32, 3, 4] {
        let cfg = ScenarioConfig::t1(k_max, duration, seed);
        let out = run_scenario(&cfg);

        let changes = window_changes(&out.traces.n_active, 15.0, duration);
        let mean_layers = {
            let pts: Vec<f64> = out
                .traces
                .n_active
                .points
                .iter()
                .filter(|&&(t, _)| t > 15.0)
                .map(|&(_, v)| v)
                .collect();
            pts.iter().sum::<f64>() / pts.len().max(1) as f64
        };
        // Peak total buffering and the share held above L1 at that moment.
        let mut peak_total = 0.0f64;
        let mut upper_share_at_peak = 0.0f64;
        let n_points = out.traces.buffer[0].points.len();
        for idx in 0..n_points {
            let per_layer: Vec<f64> = out
                .traces
                .buffer
                .iter()
                .map(|b| b.points.get(idx).map(|&(_, v)| v.max(0.0)).unwrap_or(0.0))
                .collect();
            let total: f64 = per_layer.iter().sum();
            if total > peak_total {
                peak_total = total;
                let upper: f64 = per_layer.iter().skip(2).sum();
                upper_share_at_peak = if total > 0.0 { upper / total } else { 0.0 };
            }
        }

        println!("-- K_max = {k_max} --");
        println!("active layers: {}", ascii_plot(&out.traces.n_active, 72));
        let mut total_buf = laqa_trace::TimeSeries::new(format!("total_buffer_k{k_max}"));
        for idx in 0..n_points {
            let t = out.traces.buffer[0].points[idx].0;
            let total: f64 = out
                .traces
                .buffer
                .iter()
                .map(|b| b.points.get(idx).map(|&(_, v)| v.max(0.0)).unwrap_or(0.0))
                .sum();
            total_buf.push(t, total);
        }
        println!("total buffer : {}", ascii_plot(&total_buf, 72));

        tbl.row(vec![
            k_max.to_string(),
            changes.to_string(),
            format!("{peak_total:.0}"),
            format!("{mean_layers:.2}"),
            format!("{:.0}%", 100.0 * upper_share_at_peak),
            out.metrics.stalls().to_string(),
        ]);

        let mut n_series = out.traces.n_active.clone();
        n_series.name = format!("n_active_k{k_max}");
        rec.insert(n_series);
        rec.insert(total_buf);

        let mut summary = RunSummary::new(format!("fig12/k{k_max}"));
        summary
            .param("k_max", k_max)
            .metric("quality_changes_steady", changes as f64)
            .metric("peak_total_buffer", peak_total)
            .metric("mean_layers_steady", mean_layers)
            .metric("upper_share_at_peak", upper_share_at_peak);
        summary
            .write_json(dir.join(format!("summary_k{k_max}.json")))
            .expect("summary");
    }

    println!("{}", tbl.render());
    println!("expected shape: higher K_max → fewer quality changes, larger");
    println!("total buffering, and a larger share of it pushed into higher");
    println!("layers (protection against longer loss bursts).");
    rec.write_csv_dir(&dir).expect("csv");
    std::fs::write(dir.join("table.csv"), tbl.to_csv()).expect("table csv");
    println!("wrote {}", dir.display());
}
