//! Property-based tests for the quality-adaptation invariants.
//!
//! These encode the paper's structural claims as properties over randomized
//! operating points: the band allocation always tiles the deficit triangle,
//! the state path is monotone, filling conserves bandwidth, draining never
//! over-drains, and the controller upholds its safety invariants under
//! arbitrary rate trajectories.
//!
//! Randomization comes from `laqa_check` (a seeded in-repo harness) rather
//! than proptest, so the suite runs with zero registry access; failures
//! print the exact generator seed for replay.
#![allow(clippy::needless_range_loop)] // index-parallel asserts read clearer

use laqa_check::{cases, Gen, DEFAULT_CASES};
use laqa_core::adddrop::{drop_count, required_recovery_buffer};
use laqa_core::draining::plan_draining;
use laqa_core::filling::{allocate_filling, next_fill_layer};
use laqa_core::geometry::{
    band_allocation, band_drain_rates, buffering_layer_count, deficit, sustainable_layers,
    triangle_area,
};
use laqa_core::nonlinear::{
    nl_band_allocation, nl_band_drain_rates, nl_buf_total, nl_per_layer, LayerRates,
};
use laqa_core::scenario::{buf_total, min_backoffs_below, per_layer, Scenario};
use laqa_core::{QaConfig, QaController, StateSequence};

/// Plausible operating point: (rate, n_active, layer rate C, slope S).
fn op_point(g: &mut Gen) -> (f64, usize, f64, f64) {
    (
        g.f64_range(1_000.0, 500_000.0),
        g.usize_in(1, 10),
        g.f64_range(1_000.0, 50_000.0),
        g.f64_range(500.0, 200_000.0),
    )
}

/// Random layer-rate profile: linear, exponential, or arbitrary positive.
fn layer_rates(g: &mut Gen) -> LayerRates {
    match g.usize_in(0, 2) {
        0 => LayerRates::linear(g.usize_in(1, 10), g.f64_range(1_000.0, 50_000.0)).unwrap(),
        1 => LayerRates::exponential(
            g.usize_in(1, 8),
            g.f64_range(1_000.0, 20_000.0),
            g.f64_range(1.2, 2.5),
        )
        .unwrap(),
        _ => LayerRates::new(g.vec_f64(500.0, 40_000.0, 1, 10)).unwrap(),
    }
}

#[test]
fn bands_tile_triangle() {
    cases("bands_tile_triangle", DEFAULT_CASES, |g, _| {
        let (rate, n, c, s) = op_point(g);
        let d0 = deficit(n as f64 * c, rate / 2.0);
        let n_b = buffering_layer_count(d0, c);
        let shares = band_allocation(d0, c, s, n.max(n_b));
        let total: f64 = shares.iter().sum();
        let area = triangle_area(d0, s);
        assert!(
            (total - area).abs() <= 1e-9 * area.max(1.0) + 1e-9,
            "bands {total} vs area {area}"
        );
        // Non-increasing shares: lower layers hold at least as much.
        for w in shares.windows(2) {
            assert!(w[0] + 1e-9 >= w[1]);
        }
    });
}

#[test]
fn scenario_per_layer_sums_to_total() {
    cases("scenario_per_layer_sums_to_total", DEFAULT_CASES, |g, _| {
        let (rate, n, c, s) = op_point(g);
        let k = g.u32_in(1, 10);
        for &scenario in &Scenario::ALL {
            let shares = per_layer(scenario, k, rate, n, c, s);
            let total: f64 = shares.iter().sum();
            let expect = buf_total(scenario, k, rate, n, c, s);
            assert!((total - expect).abs() <= 1e-9 * expect.max(1.0) + 1e-9);
        }
    });
}

#[test]
fn scenario_totals_monotone_in_k() {
    cases("scenario_totals_monotone_in_k", DEFAULT_CASES, |g, _| {
        let (rate, n, c, s) = op_point(g);
        for &scenario in &Scenario::ALL {
            let mut prev = 0.0;
            for k in 1..=10u32 {
                let t = buf_total(scenario, k, rate, n, c, s);
                assert!(t + 1e-9 >= prev);
                prev = t;
            }
        }
    });
}

#[test]
fn scenario1_distribution_covers_scenario2_of_same_k() {
    cases(
        "scenario1_distribution_covers_scenario2_of_same_k",
        DEFAULT_CASES,
        |g, _| {
            let (rate, n, c, s) = op_point(g);
            let k = g.u32_in(1, 6);
            // §4's key observation, restated: scenario 1 concentrates at
            // least as much buffering in *every suffix* of the layer
            // stack... in fact the tractable direction is: S1 uses at least
            // as many layers and its per-layer shares are bounded by C·T, so
            // the check we encode is that S1's total never exceeds S2's
            // total for k > k1 (S2 is the total-dominating extreme).
            let k1 = min_backoffs_below(rate, n as f64 * c);
            if k > k1 {
                let t1 = buf_total(Scenario::One, k, rate, n, c, s);
                let t2 = buf_total(Scenario::Two, k, rate, n, c, s);
                assert!(
                    t2 + 1e-6 >= t1 || (t1 - t2) / t1.max(1.0) < 0.5,
                    "S2 should dominate or be close: t1={t1} t2={t2}"
                );
            }
        },
    );
}

#[test]
fn state_sequence_monotone() {
    cases("state_sequence_monotone", DEFAULT_CASES, |g, _| {
        let (rate, n, c, s) = op_point(g);
        let k_h = g.u32_in(1, 8);
        let seq = StateSequence::build(rate, n, c, s, k_h);
        let mut prev = vec![0.0f64; n];
        for st in &seq.states {
            for i in 0..n {
                assert!(st.per_layer[i] + 1e-9 >= prev[i]);
                assert!(st.per_layer[i] + 1e-9 >= st.raw_per_layer[i]);
            }
            prev = st.per_layer.clone();
        }
    });
}

#[test]
fn filling_conserves_rate() {
    cases("filling_conserves_rate", DEFAULT_CASES, |g, _| {
        let (rate, n, c, s) = op_point(g);
        let dt = g.f64_range(0.01, 1.0);
        let fill = g.f64_range(0.0, 2.0);
        // Only meaningful in the filling phase.
        let rate = rate.max(n as f64 * c);
        let seq = StateSequence::build(rate, n, c, s, 8);
        let bufs: Vec<f64> = seq
            .states
            .last()
            .map(|st| st.per_layer.iter().map(|x| x * fill).collect())
            .unwrap_or_else(|| vec![0.0; n]);
        let alloc = allocate_filling(&seq, &bufs, rate, dt, 2, 1.0);
        let total: f64 = alloc.per_layer_rate.iter().sum();
        assert!(
            (total - rate).abs() <= 1e-6 * rate.max(1.0),
            "allocated {total} vs rate {rate}"
        );
        for (i, &r) in alloc.per_layer_rate.iter().enumerate() {
            assert!(r + 1e-9 >= c, "layer {i} starved: {r} < {c}");
        }
    });
}

#[test]
fn fill_layer_respects_path() {
    cases("fill_layer_respects_path", DEFAULT_CASES, |g, _| {
        let (rate, n, c, s) = op_point(g);
        let rate = rate.max(n as f64 * c);
        let seq = StateSequence::build(rate, n, c, s, 4);
        // From empty buffers, the first packet goes to the base — whenever
        // any state demands more than the comparison slack from it (states
        // whose every target is sub-epsilon count as already satisfied).
        let base_target = seq.states.last().map(|st| st.per_layer[0]).unwrap_or(0.0);
        if base_target > 1.0 {
            assert_eq!(next_fill_layer(&seq, &vec![0.0; n], 1.0), Some(0));
        }
        // With all targets met, no fill layer is suggested.
        let full: Vec<f64> = (0..n)
            .map(|i| {
                seq.states
                    .iter()
                    .map(|st| st.per_layer[i])
                    .fold(0.0, f64::max)
            })
            .collect();
        assert_eq!(next_fill_layer(&seq, &full, 1.0), None);
    });
}

#[test]
fn draining_never_overdraws() {
    cases("draining_never_overdraws", DEFAULT_CASES, |g, _| {
        let (rate, n, c, s) = op_point(g);
        let dt = g.f64_range(0.01, 1.0);
        let fill = g.f64_range(0.0, 1.5);
        let rate_frac = g.f64_range(0.0, 1.0);
        let peak = rate.max(n as f64 * c);
        let seq = StateSequence::build(peak, n, c, s, 8);
        let bufs: Vec<f64> = seq
            .states
            .last()
            .map(|st| st.per_layer.iter().map(|x| x * fill).collect())
            .unwrap_or_else(|| vec![0.0; n]);
        let cur_rate = rate_frac * n as f64 * c;
        let plan = plan_draining(&seq, &bufs, cur_rate, dt, 1.0);
        // The planner charges the midpoint deficit of the period (the rate
        // recovers at slope S within it).
        let need = (n as f64 * c - cur_rate - seq.slope * dt / 2.0).max(0.0) * dt;
        let drained: f64 = plan.drain.iter().sum();
        // Drained + shortfall exactly covers the need.
        assert!((drained + plan.shortfall - need).abs() <= 1e-6 * need.max(1.0) + 1e-6);
        for i in 0..n {
            assert!(plan.drain[i] <= c * dt + 1e-9, "cap violated");
            assert!(plan.drain[i] <= bufs[i] + 1e-9, "overdraft on layer {i}");
            assert!(plan.per_layer_rate[i] >= -1e-9);
        }
    });
}

#[test]
fn drop_rule_result_always_recoverable() {
    cases("drop_rule_result_always_recoverable", DEFAULT_CASES, |g, _| {
        let (rate, n, c, s) = op_point(g);
        let buf = g.f64_range(0.0, 1_000_000.0);
        let kept = sustainable_layers(n, c, rate, s, buf);
        assert!(kept <= n);
        assert!(kept >= 1 || n == 0);
        // After the drop, either the deficit is absorbable or we're at the
        // base layer.
        if kept > 1 {
            let deficit = kept as f64 * c - rate;
            assert!(deficit <= (2.0 * s * buf).sqrt() + 1e-9);
        }
        assert_eq!(drop_count(n, c, rate, s, buf), n - kept);
    });
}

#[test]
fn controller_survives_arbitrary_rate_walk() {
    cases("controller_survives_arbitrary_rate_walk", 64, |g, _| {
        let seed_rates = g.vec_f64(1_000.0, 80_000.0, 20, 119);
        let dt = g.f64_range(0.02, 0.2);
        let cfg = QaConfig {
            max_layers: 8,
            ..QaConfig::default()
        };
        let mut ctl = QaController::new(cfg).unwrap();
        ctl.set_slope(25_000.0);
        let mut now = 0.0;
        let mut prev_rate = seed_rates[0];
        for &rate in &seed_rates {
            if rate < prev_rate * 0.6 {
                ctl.on_backoff(now, rate);
            }
            let report = ctl.tick(now, rate, dt);
            // Invariants: at least the base layer, allocation length
            // matches, rates finite and non-negative.
            assert!(report.n_active >= 1);
            assert_eq!(report.per_layer_rate.len(), report.n_active);
            for &r in &report.per_layer_rate {
                assert!(r.is_finite() && r >= -1e-9);
            }
            // Emulate a faithful transport.
            for (layer, &r) in report.per_layer_rate.iter().enumerate() {
                ctl.on_packet_delivered(layer, r * dt);
            }
            // Buffer estimates stay finite and above the underflow debt
            // floor (small negatives are legal fluid-model jitter).
            let floor = -ctl.config().underflow_slack_bytes - 2.0;
            for &b in ctl.buffers() {
                assert!(b.is_finite() && b >= floor, "buffer {b} below {floor}");
            }
            now += dt;
            prev_rate = rate;
        }
    });
}

#[test]
fn controller_packet_scheduler_never_picks_inactive_layer() {
    cases(
        "controller_packet_scheduler_never_picks_inactive_layer",
        64,
        |g, _| {
            let rates = g.vec_f64(5_000.0, 60_000.0, 10, 39);
            let pkt = g.f64_range(100.0, 2_000.0);
            let mut ctl = QaController::new(QaConfig::default()).unwrap();
            ctl.set_slope(25_000.0);
            let mut now = 0.0;
            for &rate in &rates {
                let report = ctl.tick(now, rate, 0.1);
                let mut budget = rate * 0.1;
                while budget > pkt {
                    let layer = ctl.next_packet_layer(pkt);
                    assert!(layer < report.n_active);
                    ctl.on_packet_delivered(layer, pkt);
                    budget -= pkt;
                }
                now += 0.1;
            }
        },
    );
}

// ---------------------------------------------------------------------------
// Nonlinear (per-layer rate profile) invariants — nonlinear.rs
// ---------------------------------------------------------------------------

#[test]
fn nl_per_layer_sums_to_buf_total() {
    cases("nl_per_layer_sums_to_buf_total", DEFAULT_CASES, |g, _| {
        let rates = layer_rates(g);
        let n = rates.len();
        let rate = g.f64_range(1_000.0, 500_000.0);
        let s = g.f64_range(500.0, 200_000.0);
        let k = g.u32_in(1, 10);
        for &scenario in &Scenario::ALL {
            let shares = nl_per_layer(&rates, n, scenario, k, rate, s);
            assert_eq!(shares.len(), n);
            let total: f64 = shares.iter().sum();
            let expect = nl_buf_total(&rates, n, scenario, k, rate, s);
            assert!(
                (total - expect).abs() <= 1e-9 * expect.max(1.0) + 1e-9,
                "{scenario:?} k={k}: shares {total} vs total {expect}"
            );
            for (i, &b) in shares.iter().enumerate() {
                assert!(b >= -1e-9, "negative share {b} on layer {i}");
            }
        }
    });
}

#[test]
fn nl_drain_rates_sum_to_instantaneous_deficit() {
    cases(
        "nl_drain_rates_sum_to_instantaneous_deficit",
        DEFAULT_CASES,
        |g, _| {
            let rates = layer_rates(g);
            let n = rates.len();
            let stack = rates.consumption(n);
            let d = g.f64_range(-0.2, 1.5) * stack;
            // The per-layer drain pattern feeds exactly the bottom `d` of the
            // stack: each band drains at most its own rate, bands below the
            // deficit run flat out, and the total equals the instantaneous
            // deficit clamped to the stack's consumption.
            let drains = nl_band_drain_rates(&rates, n, d);
            let total: f64 = drains.iter().sum();
            let expect = d.clamp(0.0, stack);
            assert!(
                (total - expect).abs() <= 1e-9 * stack.max(1.0),
                "drains {total} vs clamped deficit {expect}"
            );
            for (i, &r) in drains.iter().enumerate() {
                assert!(r >= 0.0 && r <= rates.rate(i) + 1e-12, "layer {i}: {r}");
            }
            // Linear special case agrees with the closed-form geometry path.
            let c = g.f64_range(1_000.0, 50_000.0);
            let m = g.usize_in(1, 10);
            let d_lin = g.f64_range(0.0, 1.5) * m as f64 * c;
            let lin = band_drain_rates(d_lin, c, m);
            let nl = nl_band_drain_rates(&LayerRates::linear(m, c).unwrap(), m, d_lin);
            for i in 0..m {
                assert!((lin[i] - nl[i]).abs() <= 1e-9 * c);
            }
        },
    );
}

#[test]
fn nl_band_allocation_matches_linear_geometry() {
    cases(
        "nl_band_allocation_matches_linear_geometry",
        DEFAULT_CASES,
        |g, _| {
            let (rate, n, c, s) = op_point(g);
            let d0 = deficit(n as f64 * c, rate / 2.0);
            let lin = band_allocation(d0, c, s, n);
            let nl = nl_band_allocation(&LayerRates::linear(n, c).unwrap(), n, d0, s);
            assert_eq!(lin.len(), nl.len());
            for i in 0..n {
                assert!(
                    (lin[i] - nl[i]).abs() <= 1e-9 * lin[i].max(1.0) + 1e-9,
                    "layer {i}: linear {} vs nonlinear {}",
                    lin[i],
                    nl[i]
                );
            }
        },
    );
}

// ---------------------------------------------------------------------------
// Add/drop rule invariants — adddrop.rs
// ---------------------------------------------------------------------------

#[test]
fn drop_rule_never_strands_optimally_buffered_layers() {
    cases(
        "drop_rule_never_strands_optimally_buffered_layers",
        DEFAULT_CASES,
        |g, _| {
            let (rate, n, c, s) = op_point(g);
            // A receiver holding the full optimal allocation for the
            // post-backoff deficit can absorb that deficit by definition
            // (the bands tile the recovery triangle), so the §2.2 rule must
            // keep every layer: buffered data is never stranded in a layer
            // the rule then drops.
            let post = rate / 2.0;
            let d0 = deficit(n as f64 * c, post);
            let shares = band_allocation(d0, c, s, n.max(buffering_layer_count(d0, c)));
            let total: f64 = shares.iter().sum::<f64>() * (1.0 + 1e-9);
            let kept = sustainable_layers(n, c, post, s, total);
            assert_eq!(
                kept, n,
                "optimal allocation (total {total}) stranded {} layers",
                n - kept
            );
        },
    );
}

#[test]
fn required_recovery_buffer_is_the_drop_threshold() {
    cases(
        "required_recovery_buffer_is_the_drop_threshold",
        DEFAULT_CASES,
        |g, _| {
            let (rate, n, c, s) = op_point(g);
            let req = required_recovery_buffer(n, c, rate, s);
            assert!(req >= 0.0 && req.is_finite());
            // Holding exactly the required buffer (plus rounding slack)
            // sustains all n layers; a clear shortfall drops at least one
            // whenever more than the base layer is at stake.
            assert_eq!(sustainable_layers(n, c, rate, s, req * (1.0 + 1e-9)), n);
            if req > 1e-6 && n > 1 {
                let kept = sustainable_layers(n, c, rate, s, req * 0.25);
                assert!(kept < n, "shortfall kept all {n} layers (req {req})");
            }
        },
    );
}
