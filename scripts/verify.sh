#!/usr/bin/env bash
# Tier-1 verification for the hermetic default workspace.
#
# Runs entirely offline: the default workspace graph contains only local
# path dependencies (see DESIGN.md, "Hermetic offline builds"), so every
# step below must succeed with zero registry access. The network-facing
# laqa-net crate is excluded from the workspace and is NOT covered here —
# build it explicitly with `cargo build --manifest-path crates/net/Cargo.toml`
# on a machine with registry access.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== 1/4 build (release) =="
cargo build --release

echo "== 2/4 tests =="
cargo test -q

echo "== 3/4 clippy (deny warnings) =="
cargo clippy --all-targets -- -D warnings

echo "== 4/4 campaign smoke sweep =="
cargo run --release -p laqa-bench --bin campaign -- --smoke

echo "verify OK"
