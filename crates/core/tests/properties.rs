//! Property-based tests for the quality-adaptation invariants.
//!
//! These encode the paper's structural claims as properties over randomized
//! operating points: the band allocation always tiles the deficit triangle,
//! the state path is monotone, filling conserves bandwidth, draining never
//! over-drains, and the controller upholds its safety invariants under
//! arbitrary rate trajectories.
#![allow(clippy::needless_range_loop)] // index-parallel asserts read clearer

use laqa_core::adddrop::drop_count;
use laqa_core::draining::plan_draining;
use laqa_core::filling::{allocate_filling, next_fill_layer};
use laqa_core::geometry::{
    band_allocation, buffering_layer_count, deficit, sustainable_layers, triangle_area,
};
use laqa_core::scenario::{buf_total, min_backoffs_below, per_layer, Scenario};
use laqa_core::{QaConfig, QaController, StateSequence};
use proptest::prelude::*;

/// Strategy for plausible operating points.
fn op_point() -> impl Strategy<Value = (f64, usize, f64, f64)> {
    (
        1_000.0..500_000.0f64, // rate
        1usize..=10,           // n_active
        1_000.0..50_000.0f64,  // layer rate C
        500.0..200_000.0f64,   // slope S
    )
}

proptest! {
    #[test]
    fn bands_tile_triangle((rate, n, c, s) in op_point()) {
        let d0 = deficit(n as f64 * c, rate / 2.0);
        let n_b = buffering_layer_count(d0, c);
        let shares = band_allocation(d0, c, s, n.max(n_b));
        let total: f64 = shares.iter().sum();
        let area = triangle_area(d0, s);
        prop_assert!((total - area).abs() <= 1e-9 * area.max(1.0) + 1e-9,
            "bands {total} vs area {area}");
        // Non-increasing shares: lower layers hold at least as much.
        for w in shares.windows(2) {
            prop_assert!(w[0] + 1e-9 >= w[1]);
        }
    }

    #[test]
    fn scenario_per_layer_sums_to_total(
        (rate, n, c, s) in op_point(),
        k in 1u32..=10,
    ) {
        for &scenario in &Scenario::ALL {
            let shares = per_layer(scenario, k, rate, n, c, s);
            let total: f64 = shares.iter().sum();
            let expect = buf_total(scenario, k, rate, n, c, s);
            prop_assert!((total - expect).abs() <= 1e-9 * expect.max(1.0) + 1e-9);
        }
    }

    #[test]
    fn scenario_totals_monotone_in_k((rate, n, c, s) in op_point()) {
        for &scenario in &Scenario::ALL {
            let mut prev = 0.0;
            for k in 1..=10u32 {
                let t = buf_total(scenario, k, rate, n, c, s);
                prop_assert!(t + 1e-9 >= prev);
                prev = t;
            }
        }
    }

    #[test]
    fn scenario1_distribution_covers_scenario2_of_same_k(
        (rate, n, c, s) in op_point(),
        k in 1u32..=6,
    ) {
        // §4's key observation, restated: scenario 1 concentrates at least
        // as much buffering in *every suffix* of the layer stack... in fact
        // the tractable direction is: S1 uses at least as many layers and
        // its per-layer shares are bounded by C·T, so the check we encode is
        // that S1's total never exceeds S2's total for k > k1 (S2 is the
        // total-dominating extreme).
        let k1 = min_backoffs_below(rate, n as f64 * c);
        if k > k1 {
            let t1 = buf_total(Scenario::One, k, rate, n, c, s);
            let t2 = buf_total(Scenario::Two, k, rate, n, c, s);
            prop_assert!(t2 + 1e-6 >= t1 || (t1 - t2) / t1.max(1.0) < 0.5,
                "S2 should dominate or be close: t1={t1} t2={t2}");
        }
    }

    #[test]
    fn state_sequence_monotone((rate, n, c, s) in op_point(), k_h in 1u32..=8) {
        let seq = StateSequence::build(rate, n, c, s, k_h);
        let mut prev = vec![0.0f64; n];
        for st in &seq.states {
            for i in 0..n {
                prop_assert!(st.per_layer[i] + 1e-9 >= prev[i]);
                prop_assert!(st.per_layer[i] + 1e-9 >= st.raw_per_layer[i]);
            }
            prev = st.per_layer.clone();
        }
    }

    #[test]
    fn filling_conserves_rate(
        (rate, n, c, s) in op_point(),
        dt in 0.01..1.0f64,
        fill in 0.0..2.0f64,
    ) {
        // Only meaningful in the filling phase.
        let rate = rate.max(n as f64 * c);
        let seq = StateSequence::build(rate, n, c, s, 8);
        let bufs: Vec<f64> = seq.states.last()
            .map(|st| st.per_layer.iter().map(|x| x * fill).collect())
            .unwrap_or_else(|| vec![0.0; n]);
        let alloc = allocate_filling(&seq, &bufs, rate, dt, 2, 1.0);
        let total: f64 = alloc.per_layer_rate.iter().sum();
        prop_assert!((total - rate).abs() <= 1e-6 * rate.max(1.0),
            "allocated {total} vs rate {rate}");
        for (i, &r) in alloc.per_layer_rate.iter().enumerate() {
            prop_assert!(r + 1e-9 >= c, "layer {i} starved: {r} < {c}");
        }
    }

    #[test]
    fn fill_layer_respects_path(
        (rate, n, c, s) in op_point(),
    ) {
        let rate = rate.max(n as f64 * c);
        let seq = StateSequence::build(rate, n, c, s, 4);
        // From empty buffers, the first packet goes to the base — whenever
        // any state demands more than the comparison slack from it (states
        // whose every target is sub-epsilon count as already satisfied).
        let base_target = seq
            .states
            .last()
            .map(|st| st.per_layer[0])
            .unwrap_or(0.0);
        if base_target > 1.0 {
            prop_assert_eq!(next_fill_layer(&seq, &vec![0.0; n], 1.0), Some(0));
        }
        // With all targets met, no fill layer is suggested.
        let full: Vec<f64> = (0..n)
            .map(|i| seq.states.iter().map(|st| st.per_layer[i]).fold(0.0, f64::max))
            .collect();
        prop_assert_eq!(next_fill_layer(&seq, &full, 1.0), None);
    }

    #[test]
    fn draining_never_overdraws(
        (rate, n, c, s) in op_point(),
        dt in 0.01..1.0f64,
        fill in 0.0..1.5f64,
        rate_frac in 0.0..1.0f64,
    ) {
        let peak = rate.max(n as f64 * c);
        let seq = StateSequence::build(peak, n, c, s, 8);
        let bufs: Vec<f64> = seq.states.last()
            .map(|st| st.per_layer.iter().map(|x| x * fill).collect())
            .unwrap_or_else(|| vec![0.0; n]);
        let cur_rate = rate_frac * n as f64 * c;
        let plan = plan_draining(&seq, &bufs, cur_rate, dt, 1.0);
        // The planner charges the midpoint deficit of the period (the rate
        // recovers at slope S within it).
        let need = (n as f64 * c - cur_rate - seq.slope * dt / 2.0).max(0.0) * dt;
        let drained: f64 = plan.drain.iter().sum();
        // Drained + shortfall exactly covers the need.
        prop_assert!((drained + plan.shortfall - need).abs() <= 1e-6 * need.max(1.0) + 1e-6);
        for i in 0..n {
            prop_assert!(plan.drain[i] <= c * dt + 1e-9, "cap violated");
            prop_assert!(plan.drain[i] <= bufs[i] + 1e-9, "overdraft on layer {i}");
            prop_assert!(plan.per_layer_rate[i] >= -1e-9);
        }
    }

    #[test]
    fn drop_rule_result_always_recoverable(
        (rate, n, c, s) in op_point(),
        buf in 0.0..1_000_000.0f64,
    ) {
        let kept = sustainable_layers(n, c, rate, s, buf);
        prop_assert!(kept <= n);
        prop_assert!(kept >= 1 || n == 0);
        // After the drop, either the deficit is absorbable or we're at the
        // base layer.
        if kept > 1 {
            let deficit = kept as f64 * c - rate;
            prop_assert!(deficit <= (2.0 * s * buf).sqrt() + 1e-9);
        }
        prop_assert_eq!(drop_count(n, c, rate, s, buf), n - kept);
    }

    #[test]
    fn controller_survives_arbitrary_rate_walk(
        seed_rates in proptest::collection::vec(1_000.0..80_000.0f64, 20..120),
        dt in 0.02..0.2f64,
    ) {
        let cfg = QaConfig { max_layers: 8, ..QaConfig::default() };
        let mut ctl = QaController::new(cfg).unwrap();
        ctl.set_slope(25_000.0);
        let mut now = 0.0;
        let mut prev_rate = seed_rates[0];
        for &rate in &seed_rates {
            if rate < prev_rate * 0.6 {
                ctl.on_backoff(now, rate);
            }
            let report = ctl.tick(now, rate, dt);
            // Invariants: at least the base layer, allocation length
            // matches, rates finite and non-negative.
            prop_assert!(report.n_active >= 1);
            prop_assert_eq!(report.per_layer_rate.len(), report.n_active);
            for &r in &report.per_layer_rate {
                prop_assert!(r.is_finite() && r >= -1e-9);
            }
            // Emulate a faithful transport.
            for (layer, &r) in report.per_layer_rate.iter().enumerate() {
                ctl.on_packet_delivered(layer, r * dt);
            }
            // Buffer estimates stay finite and above the underflow debt
            // floor (small negatives are legal fluid-model jitter).
            let floor = -ctl.config().underflow_slack_bytes - 2.0;
            for &b in ctl.buffers() {
                prop_assert!(b.is_finite() && b >= floor, "buffer {b} below {floor}");
            }
            now += dt;
            prev_rate = rate;
        }
    }

    #[test]
    fn controller_packet_scheduler_never_picks_inactive_layer(
        rates in proptest::collection::vec(5_000.0..60_000.0f64, 10..40),
        pkt in 100.0..2_000.0f64,
    ) {
        let mut ctl = QaController::new(QaConfig::default()).unwrap();
        ctl.set_slope(25_000.0);
        let mut now = 0.0;
        for &rate in &rates {
            let report = ctl.tick(now, rate, 0.1);
            let mut budget = rate * 0.1;
            while budget > pkt {
                let layer = ctl.next_packet_layer(pkt);
                prop_assert!(layer < report.n_active);
                ctl.on_packet_delivered(layer, pkt);
                budget -= pkt;
            }
            now += 0.1;
        }
    }
}
