//! Synthetic layered stream content.
//!
//! The paper streams stored, pre-encoded video; the adaptation mechanism
//! never looks inside the frames, only at per-layer byte positions and their
//! inter-layer timing. This module models exactly that: each layer is a
//! byte stream consumed at its constant rate, packetized into fixed-size
//! packets whose *playout deadline* follows from their byte offset. Packet
//! payloads are generated deterministically so an end-to-end transfer (the
//! tokio experiments) can verify integrity without shipping real video.

use crate::encoding::LayeredEncoding;

/// Identifies one packet of one layer within a stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PacketId {
    /// Layer index (0 = base).
    pub layer: u8,
    /// Zero-based packet sequence number within the layer.
    pub seq: u64,
}

/// A stored layered stream: an encoding, a duration, and a packetization.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LayeredStream {
    encoding: LayeredEncoding,
    /// Stream duration (seconds).
    duration: f64,
    /// Payload bytes per packet.
    packet_size: usize,
}

impl LayeredStream {
    /// Create a stream of `duration` seconds packetized into
    /// `packet_size`-byte packets.
    pub fn new(encoding: LayeredEncoding, duration: f64, packet_size: usize) -> Self {
        assert!(duration > 0.0, "duration must be positive");
        assert!(packet_size > 0, "packet size must be positive");
        LayeredStream {
            encoding,
            duration,
            packet_size,
        }
    }

    /// The encoding backing the stream.
    pub fn encoding(&self) -> &LayeredEncoding {
        &self.encoding
    }

    /// Stream duration in seconds.
    pub fn duration(&self) -> f64 {
        self.duration
    }

    /// Packet payload size in bytes.
    pub fn packet_size(&self) -> usize {
        self.packet_size
    }

    /// Total packets stored for `layer`.
    pub fn packets_in_layer(&self, layer: usize) -> u64 {
        let bytes = self.encoding.rate(layer) * self.duration;
        (bytes / self.packet_size as f64).ceil() as u64
    }

    /// Playout deadline of a packet: the media time (seconds from stream
    /// start) at which its first byte is consumed.
    pub fn deadline(&self, id: PacketId) -> f64 {
        let offset = id.seq as f64 * self.packet_size as f64;
        offset / self.encoding.rate(id.layer as usize)
    }

    /// Inverse of [`deadline`](Self::deadline): the next packet of `layer`
    /// whose deadline is at or after `media_time`.
    pub fn packet_at(&self, layer: usize, media_time: f64) -> u64 {
        let bytes = self.encoding.rate(layer) * media_time.max(0.0);
        (bytes / self.packet_size as f64).ceil() as u64
    }

    /// Deterministic payload for a packet: a cheap keyed pattern that lets
    /// the receiving side verify integrity. Returns `len` bytes.
    pub fn payload(&self, id: PacketId, len: usize) -> Vec<u8> {
        let mut state = 0x9E37_79B9_7F4A_7C15u64
            ^ (id.seq.wrapping_mul(0xBF58_476D_1CE4_E5B9))
            ^ ((id.layer as u64) << 56);
        let mut out = Vec::with_capacity(len);
        while out.len() < len {
            // xorshift64* — deterministic, fast, dependency-free.
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let word = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
            out.extend_from_slice(&word.to_le_bytes());
        }
        out.truncate(len);
        out
    }

    /// Verify that `data` matches the deterministic payload for `id`.
    pub fn verify_payload(&self, id: PacketId, data: &[u8]) -> bool {
        self.payload(id, data.len()) == data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::LayeredEncoding;

    fn stream() -> LayeredStream {
        LayeredStream::new(LayeredEncoding::linear(3, 10_000.0).unwrap(), 60.0, 1_000)
    }

    #[test]
    fn packets_cover_duration() {
        let s = stream();
        // 10 KB/s for 60 s = 600 KB = 600 packets of 1000 B.
        assert_eq!(s.packets_in_layer(0), 600);
    }

    #[test]
    fn deadline_is_offset_over_rate() {
        let s = stream();
        assert_eq!(s.deadline(PacketId { layer: 0, seq: 0 }), 0.0);
        // Packet 100: offset 100_000 B at 10 KB/s → 10 s.
        assert!((s.deadline(PacketId { layer: 0, seq: 100 }) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn packet_at_inverts_deadline() {
        let s = stream();
        for &t in &[0.0, 1.0, 9.99, 10.0, 59.9] {
            let seq = s.packet_at(1, t);
            assert!(s.deadline(PacketId { layer: 1, seq }) >= t - 1e-9);
            if seq > 0 {
                assert!(
                    s.deadline(PacketId {
                        layer: 1,
                        seq: seq - 1
                    }) < t + 1e-9
                );
            }
        }
    }

    #[test]
    fn payload_deterministic_and_distinct() {
        let s = stream();
        let a = s.payload(PacketId { layer: 0, seq: 7 }, 64);
        let b = s.payload(PacketId { layer: 0, seq: 7 }, 64);
        let c = s.payload(PacketId { layer: 0, seq: 8 }, 64);
        let d = s.payload(PacketId { layer: 1, seq: 7 }, 64);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert_eq!(a.len(), 64);
    }

    #[test]
    fn verify_payload_round_trips() {
        let s = stream();
        let id = PacketId { layer: 2, seq: 123 };
        let p = s.payload(id, 1_000);
        assert!(s.verify_payload(id, &p));
        let mut bad = p.clone();
        bad[500] ^= 0xFF;
        assert!(!s.verify_payload(id, &bad));
    }

    #[test]
    fn payload_handles_odd_lengths() {
        let s = stream();
        for len in [0usize, 1, 7, 8, 9, 1500] {
            assert_eq!(s.payload(PacketId { layer: 0, seq: 1 }, len).len(), len);
        }
    }
}
