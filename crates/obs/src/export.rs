//! Snapshot/export layer: everything the registry, spans and event rings
//! have accumulated, frozen into one value and rendered through
//! `laqa-trace` — JSON files for `campaign --obs <dir>`, aligned text
//! tables for `laqa obs-report`.

use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::path::Path;

use laqa_trace::{JsonValue, Table};

use crate::events::{self, Level};
use crate::registry::{self, HistogramSnapshot};
use crate::span::{self, SpanSnapshot};

/// An exported event: like [`crate::LogEvent`] but with owned strings so
/// it survives a JSON round-trip through [`Snapshot::read_dir`].
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// Simulation-time stamp (seconds); `0.0` for host-side events.
    pub time: f64,
    /// Per-thread sequence number.
    pub seq: u64,
    /// Severity.
    pub level: Level,
    /// Dotted event name.
    pub target: String,
    /// `key=value` payload in declaration order.
    pub fields: Vec<(String, JsonValue)>,
}

impl EventRecord {
    /// Render as a single `[level] t=… target k=v …` line.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!(
            "[{:<5}] t={:<10.4} {}",
            self.level.label(),
            self.time,
            self.target
        );
        for (k, v) in &self.fields {
            match v {
                JsonValue::Str(s) => {
                    let _ = write!(out, " {k}={s}");
                }
                other => {
                    let _ = write!(out, " {k}={}", other.to_compact());
                }
            }
        }
        out
    }
}

impl fmt::Display for EventRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Point-in-time copy of every registered metric, span accumulator and
/// the deterministically merged event log.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauges by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
    /// Span accumulators by name.
    pub spans: BTreeMap<String, SpanSnapshot>,
    /// Merged event log, ordered by `(time, seq, target)`.
    pub events: Vec<EventRecord>,
    /// Events evicted from the bounded rings before this snapshot.
    pub events_evicted: u64,
}

impl Snapshot {
    /// Freeze the current state of every registry.
    ///
    /// Ring truncation is made visible rather than silent: nonzero
    /// eviction totals surface as the synthetic `obs.ring_evicted`
    /// (event rings) and `obs.flight_evicted` (flight-recorder rings)
    /// counters.
    pub fn collect() -> Snapshot {
        let (raw_events, evicted) = events::merged();
        let mut counters = registry::snapshot_counters();
        if evicted > 0 {
            counters.insert("obs.ring_evicted".to_string(), evicted);
        }
        let flight_evicted = crate::flight::total_evicted();
        if flight_evicted > 0 {
            counters.insert("obs.flight_evicted".to_string(), flight_evicted);
        }
        Snapshot {
            counters,
            gauges: registry::snapshot_gauges(),
            histograms: registry::snapshot_histograms(),
            spans: span::snapshot_spans(),
            events: raw_events
                .into_iter()
                .map(|e| EventRecord {
                    time: e.time,
                    seq: e.seq,
                    level: e.level,
                    target: e.target.to_string(),
                    fields: e
                        .fields
                        .into_iter()
                        .map(|(k, v)| {
                            let jv = match v {
                                crate::Value::U64(n) => JsonValue::Num(n as f64),
                                crate::Value::F64(x) => JsonValue::Num(x),
                                crate::Value::Str(s) => JsonValue::Str(s.to_string()),
                            };
                            (k.to_string(), jv)
                        })
                        .collect(),
                })
                .collect(),
            events_evicted: evicted,
        }
    }

    /// Counter value by name, `None` if never registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// Gauge value by name, `None` if never registered.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Histogram by name, `None` if never registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Span accumulators by name, `None` if never registered.
    pub fn span(&self, name: &str) -> Option<SpanSnapshot> {
        self.spans.get(name).copied()
    }

    /// True when nothing was recorded (all zeros, no events).
    pub fn is_empty(&self) -> bool {
        self.counters.values().all(|&v| v == 0)
            && self.histograms.iter().all(|h| h.count == 0)
            && self.spans.values().all(|s| s.count == 0)
            && self.events.is_empty()
    }

    fn metrics_json(&self) -> JsonValue {
        let counters = JsonValue::Obj(
            self.counters
                .iter()
                .map(|(k, v)| (k.clone(), JsonValue::Num(*v as f64)))
                .collect(),
        );
        let gauges = JsonValue::Obj(
            self.gauges
                .iter()
                .map(|(k, v)| (k.clone(), JsonValue::Num(*v)))
                .collect(),
        );
        let histograms = JsonValue::Arr(
            self.histograms
                .iter()
                .map(|h| {
                    JsonValue::Obj(vec![
                        ("name".into(), JsonValue::Str(h.name.clone())),
                        (
                            "bounds".into(),
                            JsonValue::Arr(h.bounds.iter().map(|&b| JsonValue::Num(b)).collect()),
                        ),
                        (
                            "counts".into(),
                            JsonValue::Arr(
                                h.counts.iter().map(|&c| JsonValue::Num(c as f64)).collect(),
                            ),
                        ),
                        ("count".into(), JsonValue::Num(h.count as f64)),
                        ("sum".into(), JsonValue::Num(h.sum)),
                    ])
                })
                .collect(),
        );
        JsonValue::Obj(vec![
            ("counters".into(), counters),
            ("gauges".into(), gauges),
            ("histograms".into(), histograms),
        ])
    }

    fn spans_json(&self) -> JsonValue {
        JsonValue::Obj(
            self.spans
                .iter()
                .map(|(name, s)| {
                    (
                        name.clone(),
                        JsonValue::Obj(vec![
                            ("count".into(), JsonValue::Num(s.count as f64)),
                            ("total_ns".into(), JsonValue::Num(s.total_ns as f64)),
                            ("max_ns".into(), JsonValue::Num(s.max_ns as f64)),
                        ]),
                    )
                })
                .collect(),
        )
    }

    fn events_json(&self) -> JsonValue {
        JsonValue::Obj(vec![
            (
                "evicted".into(),
                JsonValue::Num(self.events_evicted as f64),
            ),
            (
                "events".into(),
                JsonValue::Arr(
                    self.events
                        .iter()
                        .map(|e| {
                            JsonValue::Obj(vec![
                                ("time".into(), JsonValue::Num(e.time)),
                                ("seq".into(), JsonValue::Num(e.seq as f64)),
                                ("level".into(), JsonValue::Str(e.level.label().into())),
                                ("target".into(), JsonValue::Str(e.target.clone())),
                                ("fields".into(), JsonValue::Obj(e.fields.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Write `metrics.json`, `spans.json` and `events.json` into `dir`
    /// (created if missing).
    pub fn write_dir(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join("metrics.json"), self.metrics_json().to_pretty())?;
        std::fs::write(dir.join("spans.json"), self.spans_json().to_pretty())?;
        std::fs::write(dir.join("events.json"), self.events_json().to_pretty())?;
        Ok(())
    }

    /// Read a snapshot previously written by [`Snapshot::write_dir`].
    pub fn read_dir(dir: &Path) -> io::Result<Snapshot> {
        let parse = |name: &str| -> io::Result<JsonValue> {
            let text = std::fs::read_to_string(dir.join(name))?;
            laqa_trace::json::parse(&text)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{name}: {e}")))
        };
        let bad = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_string());

        let metrics = parse("metrics.json")?;
        let mut snap = Snapshot::default();
        for (k, v) in metrics
            .get("counters")
            .and_then(JsonValue::as_obj)
            .ok_or_else(|| bad("metrics.json: missing counters"))?
        {
            snap.counters
                .insert(k.clone(), v.as_num().unwrap_or(0.0) as u64);
        }
        for (k, v) in metrics
            .get("gauges")
            .and_then(JsonValue::as_obj)
            .ok_or_else(|| bad("metrics.json: missing gauges"))?
        {
            snap.gauges.insert(k.clone(), v.as_num().unwrap_or(0.0));
        }
        for h in metrics
            .get("histograms")
            .and_then(JsonValue::as_arr)
            .ok_or_else(|| bad("metrics.json: missing histograms"))?
        {
            snap.histograms.push(HistogramSnapshot {
                name: h
                    .get("name")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| bad("histogram missing name"))?
                    .to_string(),
                bounds: h
                    .get("bounds")
                    .and_then(JsonValue::as_arr)
                    .ok_or_else(|| bad("histogram missing bounds"))?
                    .iter()
                    .filter_map(JsonValue::as_num)
                    .collect(),
                counts: h
                    .get("counts")
                    .and_then(JsonValue::as_arr)
                    .ok_or_else(|| bad("histogram missing counts"))?
                    .iter()
                    .filter_map(|v| v.as_num().map(|n| n as u64))
                    .collect(),
                count: h.get("count").and_then(JsonValue::as_num).unwrap_or(0.0) as u64,
                sum: h.get("sum").and_then(JsonValue::as_num).unwrap_or(0.0),
            });
        }

        let spans = parse("spans.json")?;
        for (name, s) in spans
            .as_obj()
            .ok_or_else(|| bad("spans.json: expected an object"))?
        {
            snap.spans.insert(
                name.clone(),
                SpanSnapshot {
                    count: s.get("count").and_then(JsonValue::as_num).unwrap_or(0.0) as u64,
                    total_ns: s.get("total_ns").and_then(JsonValue::as_num).unwrap_or(0.0) as u64,
                    max_ns: s.get("max_ns").and_then(JsonValue::as_num).unwrap_or(0.0) as u64,
                },
            );
        }

        let events = parse("events.json")?;
        snap.events_evicted = events
            .get("evicted")
            .and_then(JsonValue::as_num)
            .unwrap_or(0.0) as u64;
        for e in events
            .get("events")
            .and_then(JsonValue::as_arr)
            .ok_or_else(|| bad("events.json: missing events"))?
        {
            let level_label = e
                .get("level")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| bad("event missing level"))?;
            snap.events.push(EventRecord {
                time: e.get("time").and_then(JsonValue::as_num).unwrap_or(0.0),
                seq: e.get("seq").and_then(JsonValue::as_num).unwrap_or(0.0) as u64,
                level: Level::from_label(level_label)
                    .ok_or_else(|| bad("event has unknown level"))?,
                target: e
                    .get("target")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| bad("event missing target"))?
                    .to_string(),
                fields: e
                    .get("fields")
                    .and_then(JsonValue::as_obj)
                    .map(|fs| fs.to_vec())
                    .unwrap_or_default(),
            });
        }
        Ok(snap)
    }

    /// Render counters, gauges, histograms, spans and the merged event
    /// log as aligned text tables (the `laqa obs-report` format).
    pub fn render(&self) -> String {
        let mut out = String::new();

        let mut counters = Table::new("Counters", &["counter", "value"]);
        for (name, v) in &self.counters {
            counters.row(vec![name.clone(), v.to_string()]);
        }
        out.push_str(&counters.render());
        out.push('\n');

        if !self.gauges.is_empty() {
            let mut gauges = Table::new("Gauges", &["gauge", "value"]);
            for (name, v) in &self.gauges {
                gauges.row(vec![name.clone(), format!("{v:.4}")]);
            }
            out.push_str(&gauges.render());
            out.push('\n');
        }

        if !self.histograms.is_empty() {
            let fmt_q = |h: &HistogramSnapshot, q: f64| {
                h.quantile(q)
                    .map_or_else(|| "-".into(), |v| format!("{v:.4}"))
            };
            let mut hists = Table::new(
                "Histograms",
                &["histogram", "count", "mean", "p50", "p90", "p99"],
            );
            for h in &self.histograms {
                hists.row(vec![
                    h.name.clone(),
                    h.count.to_string(),
                    h.mean().map_or_else(|| "-".into(), |m| format!("{m:.4}")),
                    fmt_q(h, 0.50),
                    fmt_q(h, 0.90),
                    fmt_q(h, 0.99),
                ]);
            }
            out.push_str(&hists.render());
            out.push('\n');
        }

        let mut spans = Table::new(
            "Spans (wall time)",
            &["span", "count", "total ms", "mean us", "max us"],
        );
        for (name, s) in &self.spans {
            spans.row(vec![
                name.clone(),
                s.count.to_string(),
                format!("{:.3}", s.total_ns as f64 / 1e6),
                s.mean_ns()
                    .map_or_else(|| "-".into(), |m| format!("{:.2}", m / 1e3)),
                format!("{:.2}", s.max_ns as f64 / 1e3),
            ]);
        }
        out.push_str(&spans.render());
        out.push('\n');

        out.push_str(&format!(
            "== Events ({} kept, {} evicted) ==\n",
            self.events.len(),
            self.events_evicted
        ));
        for e in &self.events {
            out.push_str(&e.render());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::TEST_LOCK;
    use crate::{counter, gauge, histogram};

    #[test]
    fn snapshot_write_read_round_trip() {
        let _g = TEST_LOCK.lock().unwrap();
        crate::reset();
        crate::set_enabled(true);
        counter!("export.test.ctr").add(7);
        gauge!("export.test.gauge").set(1.25);
        histogram!("export.test.hist", &[1.0, 4.0]).observe(2.0);
        crate::span!("export.test.span");
        crate::event!(
            Level::Info,
            "export.test.ev",
            3.5,
            "n" => 2u64,
            "why" => "round trip"
        );
        crate::set_enabled(false);

        let snap = crate::snapshot();
        let dir = std::env::temp_dir().join("laqa-obs-export-test");
        snap.write_dir(&dir).unwrap();
        let back = Snapshot::read_dir(&dir).unwrap();
        std::fs::remove_dir_all(&dir).ok();

        assert_eq!(back.counter("export.test.ctr"), Some(7));
        assert_eq!(back.gauge("export.test.gauge"), Some(1.25));
        let h = back.histogram("export.test.hist").unwrap();
        assert_eq!(h.counts, vec![0, 1, 0]);
        assert_eq!(back.span("export.test.span").map(|s| s.count), Some(1));
        let ev = back
            .events
            .iter()
            .find(|e| e.target == "export.test.ev")
            .unwrap();
        assert_eq!(ev.time, 3.5);
        assert!(ev.render().contains("why=round trip"));
        assert_eq!(back, snap);
    }

    #[test]
    fn render_includes_all_sections() {
        let _g = TEST_LOCK.lock().unwrap();
        crate::reset();
        crate::set_enabled(true);
        counter!("export.render.ctr").inc();
        {
            let _s = crate::span!("export.render.span");
        }
        crate::event!(Level::Warn, "export.render.ev", 0.5, "x" => 1u64);
        crate::set_enabled(false);

        let text = crate::snapshot().render();
        assert!(text.contains("== Counters =="));
        assert!(text.contains("export.render.ctr"));
        assert!(text.contains("== Spans (wall time) =="));
        assert!(text.contains("export.render.span"));
        assert!(text.contains("== Events (1 kept, 0 evicted) =="));
        assert!(text.contains("[warn ]"));
    }

    #[test]
    fn render_shows_quantile_columns() {
        let _g = TEST_LOCK.lock().unwrap();
        crate::reset();
        crate::set_enabled(true);
        for v in [1.0, 2.0, 3.0, 40.0] {
            histogram!("export.render.hist", &[2.0, 8.0, 32.0]).observe(v);
        }
        crate::set_enabled(false);
        let text = crate::snapshot().render();
        assert!(text.contains("p50"));
        assert!(text.contains("p99"));
        assert!(!text.contains("<=2:"));
    }

    #[test]
    fn ring_evictions_surface_as_counter() {
        let _g = TEST_LOCK.lock().unwrap();
        crate::reset();
        crate::set_enabled(true);
        for i in 0..(crate::events::ring_capacity() + 3) {
            crate::event!(Level::Debug, "export.evict.flood", 0.0, "i" => i);
        }
        crate::flight::set_enabled(true);
        for i in 0..(crate::flight::ring_capacity() + 2) {
            crate::flight::instant("export.evict.fl", i as f64, 0.0);
        }
        crate::flight::set_enabled(false);
        crate::set_enabled(false);
        let snap = crate::snapshot();
        assert_eq!(snap.counter("obs.ring_evicted"), Some(3));
        assert_eq!(snap.counter("obs.flight_evicted"), Some(2));
        crate::reset();
        let snap = crate::snapshot();
        assert_eq!(snap.counter("obs.ring_evicted"), None);
        assert_eq!(snap.counter("obs.flight_evicted"), None);
    }
}
