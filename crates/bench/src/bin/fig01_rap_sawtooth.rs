//! **Figure 1** — transmission rate of a single RAP flow.
//!
//! The paper's figure shows one RAP source (no fine-grain adaptation)
//! hunting around a link's fair share: linear increase, halving backoff,
//! a clean sawtooth. We run one RAP flow through a dedicated bottleneck
//! and plot its rate trace against the link bandwidth.

use laqa_bench::{ascii_plot, outdir};
use laqa_rap::RapConfig;
use laqa_sim::agents::rap::{RapFlowAgent, RapSinkAgent};
use laqa_sim::{LinkConfig, World};
use laqa_trace::{Recorder, RunSummary};

fn main() {
    let bottleneck_bw = 12_500.0; // ~100 Kb/s, the regime of the paper's plot
    let duration = 40.0;
    let mut w = World::new(1);
    let fwd = w.add_link(LinkConfig {
        bandwidth: bottleneck_bw,
        delay: 0.02,
        queue_packets: 12,
        ..LinkConfig::default()
    });
    let rev = w.add_link(LinkConfig::uncongested());
    let sink_id = 0;
    let src_id = 1;
    assert_eq!(
        w.add_agent(Box::new(RapSinkAgent::new(src_id, vec![rev], 1))),
        sink_id
    );
    let mut src = RapFlowAgent::new(
        sink_id,
        vec![fwd],
        1,
        RapConfig {
            packet_size: 1_000.0,
            initial_rate: 1_000.0,
            initial_rtt: 0.1,
            ..RapConfig::default()
        },
    );
    src.record_rate = true;
    assert_eq!(w.add_agent(Box::new(src)), src_id);
    w.run_until(duration);

    let src: &RapFlowAgent = w.agent(src_id).unwrap();
    let sink: &RapSinkAgent = w.agent(sink_id).unwrap();
    let trace = &src.rate_trace;
    let throughput = sink.bytes_received as f64 / duration;

    println!("== Figure 1: transmission rate of a single RAP flow ==");
    println!("link bandwidth : {bottleneck_bw:.0} B/s");
    println!("run duration   : {duration:.0} s");
    println!("backoffs       : {}", src.backoffs);
    println!(
        "throughput     : {throughput:.0} B/s ({:.0}% of link)",
        100.0 * throughput / bottleneck_bw
    );
    // Plot/report past the startup ramp (RAP has no slow-start validation,
    // so the first seconds overshoot until the first loss).
    let mut steady = laqa_trace::TimeSeries::new("rap_rate_steady");
    steady.points = trace
        .points
        .iter()
        .copied()
        .filter(|&(t, _)| t >= 5.0)
        .collect();
    println!(
        "rate min/max   : {:.0} / {:.0} B/s (t>5s)",
        steady.min().unwrap_or(0.0),
        steady.max().unwrap_or(0.0)
    );
    println!("rate (t>5s)    : {}", ascii_plot(&steady, 72));
    println!();
    println!("expected shape : regular sawtooth — linear climbs, multiplicative");
    println!("                 drops, peaks above the link rate (queue absorbs),");
    println!("                 long-run throughput just under the link bandwidth.");

    let dir = outdir("fig01");
    let mut rec = Recorder::new();
    rec.insert(trace.clone());
    rec.write_csv_dir(&dir).expect("write csv");
    let mut summary = RunSummary::new("fig01");
    summary
        .param("bottleneck_bw", bottleneck_bw)
        .param("duration", duration)
        .metric("backoffs", src.backoffs as f64)
        .metric("throughput", throughput)
        .metric("rate_max", trace.max().unwrap_or(0.0))
        .note("single RAP flow, coarse-grain variant (no fine-grain adaptation)");
    summary
        .write_json(dir.join("summary.json"))
        .expect("write summary");
    println!("wrote {}", dir.display());
}
