//! Layered (hierarchical) encodings.
//!
//! A hierarchically encoded stream consists of a base layer and a stack of
//! enhancement layers; an enhancement layer is only decodable when every
//! layer below it is available (§1.3). The paper's analysis assumes
//! *linearly spaced* layers — every layer consumed at the same constant rate
//! `C` — and notes that non-linear spacing is future work (§7). Both are
//! modelled here; the quality-adaptation controller's closed forms apply to
//! the linear case, while the simulator and receiver handle either.

use std::fmt;

/// Errors constructing an encoding.
#[derive(Debug, Clone, PartialEq)]
pub enum EncodingError {
    /// An encoding needs at least a base layer.
    NoLayers,
    /// Every layer rate must be finite and strictly positive.
    NonPositiveRate {
        /// Index of the offending layer.
        layer: usize,
    },
}

impl fmt::Display for EncodingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodingError::NoLayers => write!(f, "encoding must have at least one layer"),
            EncodingError::NonPositiveRate { layer } => {
                write!(f, "layer {layer} has a non-positive consumption rate")
            }
        }
    }
}

impl std::error::Error for EncodingError {}

/// One layer of a hierarchical encoding.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LayerSpec {
    /// Constant consumption rate of this layer (bytes/s).
    pub rate: f64,
}

/// A hierarchical encoding: base layer plus enhancement layers.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LayeredEncoding {
    layers: Vec<LayerSpec>,
}

impl LayeredEncoding {
    /// Build an encoding from explicit layer specs.
    pub fn new(layers: Vec<LayerSpec>) -> Result<Self, EncodingError> {
        if layers.is_empty() {
            return Err(EncodingError::NoLayers);
        }
        for (i, l) in layers.iter().enumerate() {
            if !(l.rate.is_finite() && l.rate > 0.0) {
                return Err(EncodingError::NonPositiveRate { layer: i });
            }
        }
        Ok(LayeredEncoding { layers })
    }

    /// Linearly spaced encoding: `n` layers, each consuming `rate` bytes/s —
    /// the paper's model.
    pub fn linear(n: usize, rate: f64) -> Result<Self, EncodingError> {
        Self::new(vec![LayerSpec { rate }; n])
    }

    /// Exponentially spaced encoding: layer `i` consumes `base * factor^i`
    /// bytes/s (the "non-linear distribution of bandwidth among layers" the
    /// paper lists as future work; receiver-driven multicast schemes
    /// typically use `factor = 2`).
    pub fn exponential(n: usize, base: f64, factor: f64) -> Result<Self, EncodingError> {
        let layers = (0..n)
            .map(|i| LayerSpec {
                rate: base * factor.powi(i as i32),
            })
            .collect();
        Self::new(layers)
    }

    /// Number of layers in the encoding.
    pub fn n_layers(&self) -> usize {
        self.layers.len()
    }

    /// The layer specs.
    pub fn layers(&self) -> &[LayerSpec] {
        &self.layers
    }

    /// Consumption rate of layer `i`.
    pub fn rate(&self, layer: usize) -> f64 {
        self.layers[layer].rate
    }

    /// Aggregate consumption rate of the lowest `n` layers.
    pub fn cumulative_rate(&self, n: usize) -> f64 {
        self.layers.iter().take(n).map(|l| l.rate).sum()
    }

    /// Aggregate consumption rate of the full encoding.
    pub fn total_rate(&self) -> f64 {
        self.cumulative_rate(self.n_layers())
    }

    /// True when every layer has the same rate (the controller's closed
    /// forms require this).
    pub fn is_linear(&self) -> bool {
        self.layers
            .windows(2)
            .all(|w| (w[0].rate - w[1].rate).abs() < 1e-9 * w[0].rate.max(1.0))
    }

    /// The largest number of layers whose cumulative rate fits within
    /// `bandwidth` bytes/s.
    pub fn layers_within(&self, bandwidth: f64) -> usize {
        let mut acc = 0.0;
        let mut n = 0;
        for l in &self.layers {
            if acc + l.rate > bandwidth {
                break;
            }
            acc += l.rate;
            n += 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_encoding_has_equal_rates() {
        let e = LayeredEncoding::linear(4, 10_000.0).unwrap();
        assert_eq!(e.n_layers(), 4);
        assert!(e.is_linear());
        assert_eq!(e.total_rate(), 40_000.0);
        assert_eq!(e.cumulative_rate(2), 20_000.0);
    }

    #[test]
    fn exponential_encoding_doubles() {
        let e = LayeredEncoding::exponential(3, 8_000.0, 2.0).unwrap();
        assert_eq!(e.rate(0), 8_000.0);
        assert_eq!(e.rate(1), 16_000.0);
        assert_eq!(e.rate(2), 32_000.0);
        assert!(!e.is_linear());
        assert_eq!(e.total_rate(), 56_000.0);
    }

    #[test]
    fn rejects_empty_encoding() {
        assert_eq!(
            LayeredEncoding::linear(0, 10_000.0).unwrap_err(),
            EncodingError::NoLayers
        );
    }

    #[test]
    fn rejects_non_positive_rate() {
        let err = LayeredEncoding::new(vec![LayerSpec { rate: 10.0 }, LayerSpec { rate: 0.0 }])
            .unwrap_err();
        assert_eq!(err, EncodingError::NonPositiveRate { layer: 1 });
    }

    #[test]
    fn layers_within_bandwidth() {
        let e = LayeredEncoding::linear(5, 10_000.0).unwrap();
        assert_eq!(e.layers_within(0.0), 0);
        assert_eq!(e.layers_within(9_999.0), 0);
        assert_eq!(e.layers_within(10_000.0), 1);
        assert_eq!(e.layers_within(29_000.0), 2);
        assert_eq!(e.layers_within(1e9), 5);
    }

    #[test]
    fn single_layer_is_linear() {
        assert!(LayeredEncoding::linear(1, 5_000.0).unwrap().is_linear());
    }
}
