//! Parallel scenario-campaign runner.
//!
//! The paper's tables are sweeps: every combination of workload (T1/T2),
//! smoothing factor `K_max`, and seed is one independent simulator session.
//! This module fans such a grid across OS threads with a work-stealing
//! index queue, runs each discrete-event session in isolation, and
//! aggregates the paper's metrics (buffering efficiency, avoidable drops,
//! quality changes) into summary rows.
//!
//! **Determinism contract.** A session's result — including its 64-bit
//! event-trace fingerprint — depends only on its [`SessionSpec`], never on
//! which worker ran it, how many workers there were, or in what order the
//! queue drained. Each worker deposits `(index, result)` pairs into its own
//! private buffer; a single-threaded merge afterwards places them by grid
//! index, so the aggregate [`CampaignResult::fingerprint`] is bit-identical
//! across thread counts; `tests/replay.rs` pins this with 1, 2, 8 and 16
//! workers. Wall-clock fields are the one exception and are excluded from
//! every fingerprint.
//!
//! **Warm worlds.** By default each worker keeps a [`WorldPool`]: the
//! engine storage (scheduler slab, link ring buffers, agents vector) of
//! every session it finishes is salvaged and recycled into the next one,
//! and all its QA controllers share one geometry memo. This is purely an
//! allocator optimisation — [`CampaignOptions::cold`] runs the identical
//! simulation with fresh worlds and must produce the identical fingerprint
//! (`laqa-bench campaign` gates this).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use laqa_core::metrics::QaEvent;
use laqa_trace::{RunSummary, Table, TraceHasher};

use crate::engine::World;
use crate::faults::FaultPlan;
use crate::mega::MegaEngine;
use crate::scenarios::{
    build_scenario, extract_outcome, run_scenario_pooled, run_scenario_with, ScenarioConfig,
    ScenarioOutcome, TraceKind, Transport, WorldPool,
};
use crate::sched::{ambient_scheduler, SchedulerKind};

/// Which of the paper's dumbbell workloads a session runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum TestKind {
    /// T1: one QA-RAP source vs 9 RAP + 10 TCP flows.
    T1,
    /// T2: T1 plus a CBR burst through the middle of the run.
    T2,
}

impl TestKind {
    /// Both workloads, in table order.
    pub const ALL: [TestKind; 2] = [TestKind::T1, TestKind::T2];

    /// Short label used in tables and summaries.
    pub fn label(&self) -> &'static str {
        match self {
            TestKind::T1 => "T1",
            TestKind::T2 => "T2",
        }
    }
}

/// One cell of the sweep grid: a fully-specified simulator session.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SessionSpec {
    /// Workload.
    pub test: TestKind,
    /// QA smoothing factor `K_max`.
    pub k_max: u32,
    /// Simulation seed.
    pub seed: u64,
    /// Simulated duration (seconds).
    pub duration: f64,
    /// Fault-suite intensity in `(0, 1]`; `None` runs the scenario with
    /// no fault injection at all (see [`FaultPlan::suite`]).
    pub fault_intensity: Option<f64>,
    /// Congestion controller under the QA flow (the interop-matrix axis).
    /// [`Transport::Rap`] reproduces the paper's system — and the label,
    /// scenario and fingerprint of every pre-existing RAP cell,
    /// byte-identical.
    #[cfg_attr(feature = "serde", serde(default))]
    pub transport: Transport,
    /// Hostile link-condition trace on the bottleneck (the `hostile_grid`
    /// axis). `None` — the default, and what every pre-existing spec
    /// deserializes to — keeps the static dumbbell and its fingerprints
    /// byte-identical.
    #[cfg_attr(feature = "serde", serde(default))]
    pub trace: Option<TraceKind>,
}

impl SessionSpec {
    /// The scenario configuration this spec denotes.
    pub fn scenario(&self) -> ScenarioConfig {
        let mut cfg = match self.test {
            TestKind::T1 => ScenarioConfig::t1(self.k_max, self.duration, self.seed),
            TestKind::T2 => ScenarioConfig::t2(self.k_max, self.duration, self.seed),
        };
        if let Some(i) = self.fault_intensity {
            cfg.faults = FaultPlan::suite(i);
        }
        let cfg = cfg.with_transport(self.transport);
        match self.trace {
            Some(trace) => cfg.with_trace(trace),
            None => cfg,
        }
    }

    /// Stable label, e.g. `T1/k3/seed42` (`T1/k3/seed42/f060` with a
    /// fault suite at intensity 0.60; non-RAP transports append their
    /// label, e.g. `T1/k3/seed42/bbr`, and hostile-trace cells theirs,
    /// e.g. `T1/k3/seed42/bbr/lte` — RAP no-trace cells keep the
    /// historical byte-identical label).
    pub fn label(&self) -> String {
        let base = format!("{}/k{}/seed{}", self.test.label(), self.k_max, self.seed);
        let base = match self.fault_intensity {
            Some(i) => format!("{base}/f{:03}", (i * 100.0).round() as u32),
            None => base,
        };
        let base = match self.transport {
            Transport::Rap => base,
            t => format!("{base}/{}", t.label()),
        };
        match self.trace {
            Some(trace) => format!("{base}/{}", trace.label()),
            None => base,
        }
    }
}

/// A full sweep: the list of sessions to run.
#[derive(Debug, Clone, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CampaignSpec {
    /// Sessions in grid order (test-major, then `K_max`, then seed).
    pub sessions: Vec<SessionSpec>,
}

impl CampaignSpec {
    /// Cartesian grid `tests × k_values × seeds`, each of `duration`
    /// simulated seconds.
    pub fn grid(tests: &[TestKind], k_values: &[u32], seeds: &[u64], duration: f64) -> Self {
        let mut sessions = Vec::with_capacity(tests.len() * k_values.len() * seeds.len());
        for &test in tests {
            for &k_max in k_values {
                for &seed in seeds {
                    sessions.push(SessionSpec {
                        test,
                        k_max,
                        seed,
                        duration,
                        fault_intensity: None,
                        transport: Transport::Rap,
                        trace: None,
                    });
                }
            }
        }
        CampaignSpec { sessions }
    }

    /// QA × transport interop matrix: `tests × transports × k_values ×
    /// seeds`, with an optional fault suite applied to every cell. Each
    /// transport's cells run the same workloads and seeds, so rows are
    /// directly comparable across controllers.
    pub fn interop_grid(
        tests: &[TestKind],
        transports: &[Transport],
        k_values: &[u32],
        seeds: &[u64],
        duration: f64,
        fault_intensity: Option<f64>,
    ) -> Self {
        let mut sessions = Vec::new();
        for &test in tests {
            for &transport in transports {
                for &k_max in k_values {
                    for &seed in seeds {
                        sessions.push(SessionSpec {
                            test,
                            k_max,
                            seed,
                            duration,
                            fault_intensity,
                            transport,
                            trace: None,
                        });
                    }
                }
            }
        }
        CampaignSpec { sessions }
    }

    /// Fault-intensity sweep: `tests × k_values × intensities × seeds`.
    /// An intensity of exactly `0.0` runs the fault-free baseline cell
    /// (useful as the reference column of a sweep table).
    pub fn faults_grid(
        tests: &[TestKind],
        k_values: &[u32],
        intensities: &[f64],
        seeds: &[u64],
        duration: f64,
    ) -> Self {
        let mut sessions = Vec::new();
        for &test in tests {
            for &k_max in k_values {
                for &intensity in intensities {
                    for &seed in seeds {
                        sessions.push(SessionSpec {
                            test,
                            k_max,
                            seed,
                            duration,
                            fault_intensity: (intensity > 0.0).then_some(intensity),
                            transport: Transport::Rap,
                            trace: None,
                        });
                    }
                }
            }
        }
        CampaignSpec { sessions }
    }

    /// Hostile-network corpus: `tests × traces × transports × k_values ×
    /// seeds`, with an optional fault suite composed on top of every cell
    /// (faults mutate the same links the traces drive; the trace's next
    /// schedule point overwrites whatever a fault set — see
    /// `tests/faults_replay.rs` for the pinned precedence). Trace-major
    /// ordering keeps each corpus condition's cells contiguous in tables.
    pub fn hostile_grid(
        tests: &[TestKind],
        traces: &[TraceKind],
        transports: &[Transport],
        k_values: &[u32],
        seeds: &[u64],
        duration: f64,
        fault_intensity: Option<f64>,
    ) -> Self {
        let mut sessions = Vec::new();
        for &test in tests {
            for &trace in traces {
                for &transport in transports {
                    for &k_max in k_values {
                        for &seed in seeds {
                            sessions.push(SessionSpec {
                                test,
                                k_max,
                                seed,
                                duration,
                                fault_intensity,
                                transport,
                                trace: Some(trace),
                            });
                        }
                    }
                }
            }
        }
        CampaignSpec { sessions }
    }

    /// Number of sessions.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// True when the sweep is empty.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }
}

/// Paper metrics and the determinism fingerprint of one finished session.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SessionResult {
    /// The spec this session ran.
    pub spec: SessionSpec,
    /// Buffering efficiency `(buf_total − buf_drop) / buf_total` over all
    /// drops (`None` when nothing was ever dropped).
    pub efficiency: Option<f64>,
    /// Fraction of drops that were avoidable (`None` without drops).
    pub avoidable_drops: Option<f64>,
    /// Layer adds + drops (Table 2's quality-change count).
    pub quality_changes: usize,
    /// Layer adds.
    pub adds: usize,
    /// Layer drops.
    pub drops: usize,
    /// Base-layer stalls (should be zero in a healthy run).
    pub stalls: usize,
    /// Congestion backoffs the QA flow took.
    pub backoffs: u64,
    /// Packets dropped at the bottleneck (all flows).
    pub bottleneck_drops: u64,
    /// Receiver-observed playout underflows (all layers).
    pub rx_underflows: u64,
    /// Receiver-observed base-layer underflows.
    pub rx_base_underflows: u64,
    /// Quality changes per simulated second (the fault suite's headline
    /// stability metric).
    pub layer_change_rate: f64,
    /// Mean seconds from a layer drop to the next layer add (`None` when
    /// the run never dropped, or never re-added after its last drop) —
    /// how fast the controller recovers quality after a fault.
    pub recovery_secs_mean: Option<f64>,
    /// Bytes the receiver's base layer wanted but could not play.
    pub base_starved_bytes: f64,
    /// Receiver bytes written off by layer drops.
    pub discarded_bytes: f64,
    /// Fault transitions injected (0 without a fault plan).
    pub fault_transitions: u64,
    /// Link-condition schedule points applied by [`crate::TraceDriver`]s
    /// (0 for steady-link cells).
    #[cfg_attr(feature = "serde", serde(default))]
    pub trace_changes: u64,
    /// Bytes the second path of a bonded cell carried (`None` unless the
    /// cell runs [`TraceKind::Bonded`]).
    #[cfg_attr(feature = "serde", serde(default))]
    pub bond_leg_bytes: Option<u64>,
    /// FNV-1a fingerprint of the session's event trace (see
    /// [`hash_outcome`]).
    pub trace_hash: u64,
    /// Wall-clock seconds this session took (excluded from fingerprints).
    pub wall_secs: f64,
    /// Discrete events the engine dispatched (deterministic, but excluded
    /// from fingerprints to keep existing goldens stable; with `wall_secs`
    /// it yields the events/sec throughput in run summaries).
    pub events_processed: u64,
}

impl SessionResult {
    /// Fold everything except wall-clock into `h`.
    fn fingerprint_into(&self, h: &mut TraceHasher) {
        h.str(&self.spec.label());
        h.f64(self.spec.duration);
        h.f64(self.efficiency.unwrap_or(f64::NEG_INFINITY));
        h.f64(self.avoidable_drops.unwrap_or(f64::NEG_INFINITY));
        h.u64(self.quality_changes as u64);
        h.u64(self.adds as u64);
        h.u64(self.drops as u64);
        h.u64(self.stalls as u64);
        h.u64(self.backoffs);
        h.u64(self.bottleneck_drops);
        h.u64(self.rx_underflows);
        h.u64(self.rx_base_underflows);
        h.f64(self.layer_change_rate);
        h.f64(self.recovery_secs_mean.unwrap_or(f64::NEG_INFINITY));
        h.f64(self.base_starved_bytes);
        h.f64(self.discarded_bytes);
        h.u64(self.fault_transitions);
        // Gated exactly like `hash_outcome`: steady-link cells keep their
        // historical campaign fingerprints byte-identical.
        if self.trace_changes != 0 {
            h.u64(self.trace_changes);
        }
        if let Some(b) = self.bond_leg_bytes {
            h.u64(b);
        }
        h.u64(self.trace_hash);
    }

    /// Machine-readable summary for EXPERIMENTS.md tooling.
    pub fn summary(&self) -> RunSummary {
        let mut s = RunSummary::new(format!("campaign/{}", self.spec.label()));
        s.param("test", self.spec.test.label())
            .param("k_max", self.spec.k_max)
            .param("seed", self.spec.seed)
            .param("duration", self.spec.duration);
        if let Some(e) = self.efficiency {
            s.metric("efficiency", e);
        }
        if let Some(a) = self.avoidable_drops {
            s.metric("avoidable_drops", a);
        }
        if let Some(i) = self.spec.fault_intensity {
            s.param("fault_intensity", i);
        }
        if self.spec.transport != Transport::Rap {
            // RAP rows keep their historical parameter set byte-identical;
            // only interop cells carry the transport column.
            s.param("transport", self.spec.transport.label());
        }
        if let Some(trace) = self.spec.trace {
            s.param("trace", trace.label());
            s.metric("trace_changes", self.trace_changes as f64);
        }
        if let Some(b) = self.bond_leg_bytes {
            s.metric("bond_leg_bytes", b as f64);
        }
        if let Some(r) = self.recovery_secs_mean {
            s.metric("recovery_secs_mean", r);
        }
        s.metric("quality_changes", self.quality_changes as f64)
            .metric("adds", self.adds as f64)
            .metric("drops", self.drops as f64)
            .metric("stalls", self.stalls as f64)
            .metric("backoffs", self.backoffs as f64)
            .metric("bottleneck_drops", self.bottleneck_drops as f64)
            .metric("rx_underflows", self.rx_underflows as f64)
            .metric("layer_change_rate", self.layer_change_rate)
            .metric("base_starved_bytes", self.base_starved_bytes)
            .metric("discarded_bytes", self.discarded_bytes)
            .metric("fault_transitions", self.fault_transitions as f64)
            .metric("trace_hash_lo32", (self.trace_hash & 0xffff_ffff) as f64)
            .timing(self.wall_secs, self.events_processed);
        s
    }
}

/// Aggregate of a finished sweep.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// Per-session results, in spec order (independent of scheduling).
    pub sessions: Vec<SessionResult>,
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock seconds the worker threads spent simulating — from
    /// launch until the last worker finished, merge excluded — so
    /// events/sec computed against this measures simulation, not
    /// aggregation. Excluded from fingerprints.
    pub wall_secs: f64,
    /// Wall-clock seconds of the final single-threaded result merge
    /// (buffer collection and index placement). Excluded from
    /// fingerprints.
    pub merge_secs: f64,
}

impl CampaignResult {
    /// Order-stable 64-bit digest of every session's metrics and trace
    /// hash. Equal across runs with different thread counts.
    pub fn fingerprint(&self) -> u64 {
        let mut h = TraceHasher::new();
        h.u64(self.sessions.len() as u64);
        for s in &self.sessions {
            s.fingerprint_into(&mut h);
        }
        h.finish()
    }

    /// Paper-style text table of the sweep.
    pub fn table(&self) -> String {
        let mut tbl = Table::new(
            "campaign results",
            &[
                "session", "eff", "avoid", "chg", "adds", "drops", "stalls", "backoffs",
                "btl drops", "underflows", "recov", "starved", "trace hash",
            ],
        );
        for s in &self.sessions {
            let opt = |v: Option<f64>| match v {
                Some(x) => format!("{x:.4}"),
                None => "-".to_string(),
            };
            tbl.row(vec![
                s.spec.label(),
                opt(s.efficiency),
                opt(s.avoidable_drops),
                s.quality_changes.to_string(),
                s.adds.to_string(),
                s.drops.to_string(),
                s.stalls.to_string(),
                s.backoffs.to_string(),
                s.bottleneck_drops.to_string(),
                s.rx_underflows.to_string(),
                match s.recovery_secs_mean {
                    Some(r) => format!("{r:.2}s"),
                    None => "-".to_string(),
                },
                format!("{:.0}", s.base_starved_bytes),
                format!("{:016x}", s.trace_hash),
            ]);
        }
        tbl.render()
    }

    /// Machine-readable per-session summaries.
    pub fn summaries(&self) -> Vec<RunSummary> {
        self.sessions.iter().map(SessionResult::summary).collect()
    }

    /// Mean of a metric over sessions matching `test` and `k_max`.
    pub fn mean_metric(
        &self,
        test: TestKind,
        k_max: u32,
        metric: impl Fn(&SessionResult) -> Option<f64>,
    ) -> Option<f64> {
        let vals: Vec<f64> = self
            .sessions
            .iter()
            .filter(|s| s.spec.test == test && s.spec.k_max == k_max)
            .filter_map(metric)
            .collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    }
}

/// Fold a scenario outcome's observable event trace into a 64-bit digest.
///
/// Covers the QA event log, the tick-level rate/layer traces, the
/// bottleneck counters and the final buffer estimates; floats enter via
/// their exact bit patterns, so two outcomes hash equal only when the
/// simulated histories are bit-identical.
pub fn hash_outcome(out: &ScenarioOutcome) -> u64 {
    let mut h = TraceHasher::new();
    h.u64(out.metrics.events().len() as u64);
    for ev in out.metrics.events() {
        hash_event(&mut h, ev);
    }
    h.samples(&out.traces.tx_rate.points);
    h.samples(&out.traces.n_active.points);
    h.samples(&out.queue_trace.points);
    h.u64(out.backoffs);
    h.u64(out.rx_underflows);
    h.u64(out.rx_base_underflows);
    h.u64(out.bottleneck.enqueued);
    h.u64(out.bottleneck.dropped);
    h.u64(out.bottleneck.random_losses);
    h.u64(out.bottleneck.bytes_out);
    h.u64(out.bottleneck.peak_queue as u64);
    h.u64(out.final_buffers.len() as u64);
    for &b in &out.final_buffers {
        h.f64(b);
    }
    for series in [&out.rap_throughput, &out.tcp_goodput] {
        h.u64(series.len() as u64);
        for &v in series {
            h.f64(v);
        }
    }
    h.u64(out.fault_stats.flap_downs);
    h.f64(out.fault_stats.flap_down_secs);
    h.u64(out.fault_stats.rtt_spikes);
    h.u64(out.fault_stats.loss_bursts);
    h.u64(out.fault_stats.churn_joins);
    h.u64(out.fault_stats.churn_packets);
    h.f64(out.base_starved_bytes);
    h.f64(out.discarded_bytes);
    // Hostile-corpus fields hash only when present, so every pre-existing
    // (untraced, unbonded) outcome keeps its historical digest.
    if out.trace_changes != 0 {
        h.u64(out.trace_changes);
    }
    if let Some(leg) = out.bond_leg {
        h.u64(leg.enqueued);
        h.u64(leg.dropped);
        h.u64(leg.random_losses);
        h.u64(leg.bytes_out);
        h.u64(leg.peak_queue as u64);
    }
    h.finish()
}

fn hash_event(h: &mut TraceHasher, ev: &QaEvent) {
    match ev {
        QaEvent::LayerAdded { time, n_active } => {
            h.u64(1).f64(*time).u64(*n_active as u64);
        }
        QaEvent::LayerDropped {
            time,
            layer,
            n_active,
            buf_total,
            buf_drop,
            required,
            reason,
        } => {
            h.u64(2)
                .f64(*time)
                .u64(*layer as u64)
                .u64(*n_active as u64)
                .f64(*buf_total)
                .f64(*buf_drop)
                .f64(*required)
                .u64(*reason as u64);
        }
        QaEvent::BaseStall { time } => {
            h.u64(3).f64(*time);
        }
    }
}

/// Mean seconds from the first drop of each degradation episode to the
/// next layer add — the fault suite's recovery-time metric. `None` when
/// no drop was ever followed by an add.
pub fn mean_recovery_secs(events: &[QaEvent]) -> Option<f64> {
    let mut gaps: Vec<f64> = Vec::new();
    let mut episode_start: Option<f64> = None;
    for ev in events {
        match ev {
            QaEvent::LayerDropped { time, .. } => {
                episode_start.get_or_insert(*time);
            }
            QaEvent::LayerAdded { time, .. } => {
                if let Some(t0) = episode_start.take() {
                    gaps.push(time - t0);
                }
            }
            _ => {}
        }
    }
    if gaps.is_empty() {
        None
    } else {
        Some(gaps.iter().sum::<f64>() / gaps.len() as f64)
    }
}

/// Run one session to a result (synchronously, on the calling thread),
/// using the ambient event-scheduler kind.
pub fn run_session(spec: &SessionSpec) -> SessionResult {
    run_session_with(spec, ambient_scheduler())
}

/// Run one session on an explicit event-scheduler implementation. Every
/// fingerprinted field of the result is independent of `sched`; only
/// `wall_secs` (excluded from fingerprints) may differ.
pub fn run_session_with(spec: &SessionSpec, sched: SchedulerKind) -> SessionResult {
    let started = Instant::now();
    let out = run_scenario_with(&spec.scenario(), sched);
    outcome_to_result(spec, out, started.elapsed().as_secs_f64())
}

/// Run one session through a worker's [`WorldPool`] (warm-world path):
/// the pool's salvaged engine storage and shared geometry memo are reused
/// and this session's world is banked back for the next call. Every
/// fingerprinted field is identical to [`run_session_with`].
pub fn run_session_pooled(
    spec: &SessionSpec,
    sched: SchedulerKind,
    pool: &mut WorldPool,
) -> SessionResult {
    let started = Instant::now();
    let out = run_scenario_pooled(&spec.scenario(), sched, pool);
    outcome_to_result(spec, out, started.elapsed().as_secs_f64())
}

/// Distill a finished scenario into its [`SessionResult`] row.
fn outcome_to_result(spec: &SessionSpec, out: ScenarioOutcome, wall_secs: f64) -> SessionResult {
    laqa_obs::counter!("campaign.sessions").inc();
    laqa_obs::histogram!("campaign.session_wall_ms", laqa_obs::LOG_MS_BOUNDS)
        .observe(wall_secs * 1e3);
    SessionResult {
        spec: spec.clone(),
        efficiency: out.metrics.efficiency(),
        avoidable_drops: out.metrics.avoidable_drop_fraction(),
        quality_changes: out.metrics.quality_changes(),
        adds: out.metrics.adds(),
        drops: out.metrics.drops(),
        stalls: out.metrics.stalls(),
        backoffs: out.backoffs,
        bottleneck_drops: out.bottleneck.dropped,
        rx_underflows: out.rx_underflows,
        rx_base_underflows: out.rx_base_underflows,
        layer_change_rate: out.metrics.quality_changes() as f64 / spec.duration.max(1e-9),
        recovery_secs_mean: mean_recovery_secs(out.metrics.events()),
        base_starved_bytes: out.base_starved_bytes,
        discarded_bytes: out.discarded_bytes,
        fault_transitions: out.fault_stats.transitions(),
        trace_changes: out.trace_changes,
        bond_leg_bytes: out.bond_leg.map(|l| l.bytes_out),
        trace_hash: hash_outcome(&out),
        wall_secs,
        events_processed: out.events_processed,
    }
}

/// Run the sweep on `threads` worker threads (clamped to at least 1),
/// using the ambient event-scheduler kind.
///
/// Workers steal session indices from a shared atomic counter — no
/// per-thread pre-partitioning, so a slow session never idles the other
/// workers — and deposit results into the slot matching the session's
/// grid index. The returned order (and every fingerprint) is therefore
/// identical for any thread count.
pub fn run_campaign(spec: &CampaignSpec, threads: usize) -> CampaignResult {
    run_campaign_with(spec, threads, ambient_scheduler())
}

/// [`run_campaign`] on an explicit event-scheduler implementation. The
/// campaign fingerprint is bit-identical for every `sched` and every
/// thread count.
pub fn run_campaign_with(
    spec: &CampaignSpec,
    threads: usize,
    sched: SchedulerKind,
) -> CampaignResult {
    run_campaign_opts(spec, CampaignOptions::new(threads).sched(sched))
}

/// How a campaign executes. Everything here is invisible to the simulated
/// results — only wall-clock and allocator behaviour change.
#[derive(Debug, Clone, Copy)]
pub struct CampaignOptions {
    /// Worker threads (clamped to `[1, sessions]` at run time).
    pub threads: usize,
    /// Event-scheduler implementation every session runs on.
    pub sched: SchedulerKind,
    /// Keep a warm [`WorldPool`] per worker (the default). `false` builds
    /// every session's world from scratch — the cold baseline the bench
    /// compares against.
    pub warm: bool,
    /// Multiplex each worker's sessions on one [`MegaEngine`] instead of
    /// running them one world at a time. Purely an executor choice: every
    /// fingerprint is bit-identical to the per-cell path (the mega
    /// differential suite pins this); only wall-clock and allocator
    /// behaviour change.
    pub mega: bool,
    /// Sessions a mega worker steals and admits per batch (clamped to at
    /// least 1; ignored unless `mega`). Larger chunks amortise engine
    /// overhead across more concurrent sessions; smaller chunks steal more
    /// fairly.
    pub mega_chunk: usize,
    /// Simulated-time service quantum for the mega executor's sliced
    /// service loop (`None` keeps the engine default; ignored unless
    /// `mega`). Purely a batching knob — every value yields bit-identical
    /// fingerprints (see [`MegaEngine::set_service_slice`]).
    pub mega_slice: Option<f64>,
}

impl CampaignOptions {
    /// Defaults: ambient scheduler, warm world pools, per-cell executor.
    pub fn new(threads: usize) -> Self {
        CampaignOptions {
            threads,
            sched: ambient_scheduler(),
            warm: true,
            mega: false,
            mega_chunk: 32,
            mega_slice: None,
        }
    }

    /// Select the event-scheduler implementation.
    pub fn sched(mut self, sched: SchedulerKind) -> Self {
        self.sched = sched;
        self
    }

    /// Disable world reuse (cold worlds).
    pub fn cold(mut self) -> Self {
        self.warm = false;
        self
    }

    /// Multiplex each worker's sessions on one [`MegaEngine`].
    pub fn mega(mut self) -> Self {
        self.mega = true;
        self
    }

    /// Set the mega executor's steal-batch size (see
    /// [`CampaignOptions::mega_chunk`]).
    pub fn mega_chunk(mut self, chunk: usize) -> Self {
        self.mega_chunk = chunk;
        self
    }

    /// Set the mega executor's service slice in simulated seconds (see
    /// [`CampaignOptions::mega_slice`]).
    pub fn mega_slice(mut self, slice_secs: f64) -> Self {
        self.mega_slice = Some(slice_secs);
        self
    }
}

/// Worker threads actually spawned for a request of `requested` threads:
/// clamped to `[1, sessions]` (a worker with no session to steal is
/// pure overhead) and to the host's available parallelism — spawning 16
/// workers on a 1-core host buys no scaling but multiplies the result
/// buffers the deterministic merge has to walk (the `merge_secs` blowup
/// the bench recorded before PR 10).
fn effective_threads(requested: usize, sessions: usize) -> usize {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    requested.max(1).min(sessions.max(1)).min(cores)
}

/// Per-worker steal-and-run loop shared by both executors. `deposit` is
/// called with `(worker, index, result)` for every finished session.
fn worker_loop(
    spec: &CampaignSpec,
    opts: CampaignOptions,
    worker: usize,
    next: &AtomicUsize,
    mut deposit: impl FnMut(usize, SessionResult),
) {
    if opts.mega {
        return mega_worker_loop(spec, opts, worker, next, deposit);
    }
    let mut pool = opts.warm.then(WorldPool::new);
    loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        let Some(session) = spec.sessions.get(i) else {
            break;
        };
        laqa_obs::counter!("campaign.steals").inc();
        if laqa_obs::flight::enabled() {
            // Timeline records from this cell land on the track of its
            // grid index, regardless of which worker stole it.
            laqa_obs::flight::set_session(i as u64);
        }
        let result = match pool.as_mut() {
            Some(pool) => run_session_pooled(session, opts.sched, pool),
            None => run_session_with(session, opts.sched),
        };
        laqa_obs::event!(
            laqa_obs::Level::Debug,
            "campaign.cell",
            0.0,
            "worker" => worker,
            "cell" => i,
            "wall_ms" => result.wall_secs * 1e3,
            "events" => result.events_processed,
        );
        deposit(i, result);
    }
}

/// Megasession worker: steal a *chunk* of session indices, build every
/// world in the chunk, admit them all into this worker's persistent
/// [`MegaEngine`] at the same global start time, run the whole batch on
/// the one shared event queue, then extract, retire and deposit each
/// session. The engine (and its banked session queues) survives across
/// chunks, so steady-state chunks recycle all engine storage.
///
/// Per-session trajectories are bit-identical to the per-cell executor —
/// sessions share only the event queue, and the queue's `(time, seq)`
/// total order preserves each session's private dispatch order (see the
/// equivalence argument in [`crate::mega`]). Wall-clock is measured per
/// chunk and apportioned to sessions by their share of dispatched events,
/// since individual sessions no longer run contiguously.
fn mega_worker_loop(
    spec: &CampaignSpec,
    opts: CampaignOptions,
    worker: usize,
    next: &AtomicUsize,
    mut deposit: impl FnMut(usize, SessionResult),
) {
    let mut pool = opts.warm.then(WorldPool::new);
    let mut engine = MegaEngine::with_scheduler(opts.sched);
    if let Some(slice) = opts.mega_slice {
        engine.set_service_slice(slice);
    }
    let chunk = opts.mega_chunk.max(1);
    loop {
        let lo = next.fetch_add(chunk, Ordering::Relaxed);
        if lo >= spec.sessions.len() {
            break;
        }
        let hi = (lo + chunk).min(spec.sessions.len());
        let started = Instant::now();
        let t0 = engine.now();
        engine.reserve(hi - lo, (hi - lo) * 64);
        let mut admitted = Vec::with_capacity(hi - lo);
        let mut t_end = t0;
        for i in lo..hi {
            laqa_obs::counter!("campaign.steals").inc();
            let cfg = spec.sessions[i].scenario();
            let world = match pool.as_mut().and_then(WorldPool::take_salvage) {
                Some(salvage) => World::with_salvage(cfg.seed, opts.sched, salvage),
                None => World::with_scheduler(cfg.seed, opts.sched),
            };
            let geometry = pool.as_ref().and_then(WorldPool::geometry);
            let (mut world, handles) = build_scenario(&cfg, world, geometry);
            // Same track id as the per-cell executor uses, so flight
            // timelines line up across executors.
            world.set_flight_id(i as u64);
            let sid = engine.add_world(world, t0, cfg.duration);
            t_end = t_end.max(t0 + cfg.duration);
            admitted.push((i, cfg, handles, sid));
        }
        engine.run_until(t_end);
        let wall = started.elapsed().as_secs_f64();
        let total_events: u64 = admitted
            .iter()
            .map(|(_, _, _, sid)| engine.session(*sid).events_processed())
            .sum();
        for (i, cfg, handles, sid) in admitted {
            let out = extract_outcome(&cfg, &engine.session(sid), &handles);
            let wall_share = if total_events > 0 {
                wall * out.events_processed as f64 / total_events as f64
            } else {
                wall / (hi - lo) as f64
            };
            let result = outcome_to_result(&spec.sessions[i], out, wall_share);
            laqa_obs::event!(
                laqa_obs::Level::Debug,
                "campaign.cell",
                0.0,
                "worker" => worker,
                "cell" => i,
                "wall_ms" => result.wall_secs * 1e3,
                "events" => result.events_processed,
            );
            let salvage = engine.retire(sid);
            if let Some(pool) = pool.as_mut() {
                pool.bank_salvage(salvage);
            }
            deposit(i, result);
        }
    }
}

/// Run the sweep under explicit [`CampaignOptions`]. Workers steal session
/// indices from a shared atomic counter and deposit `(index, result)` into
/// their own private buffers — no shared lock anywhere on the hot path —
/// and a deterministic index-ordered merge assembles the final vector
/// after the last worker exits. The fingerprint is bit-identical for
/// every thread count, scheduler kind, and warm/cold setting.
pub fn run_campaign_opts(spec: &CampaignSpec, opts: CampaignOptions) -> CampaignResult {
    let threads = effective_threads(opts.threads, spec.sessions.len());
    let started = Instant::now();
    let next = AtomicUsize::new(0);

    laqa_obs::gauge!("campaign.threads").set(threads as f64);
    let (buffers, wall_secs) = std::thread::scope(|scope| {
        let next = &next;
        let handles: Vec<_> = (0..threads)
            .map(|worker| {
                scope.spawn(move || {
                    let mut buf: Vec<(usize, SessionResult)> = Vec::new();
                    worker_loop(spec, opts, worker, next, |i, r| buf.push((i, r)));
                    buf
                })
            })
            .collect();
        let buffers: Vec<Vec<(usize, SessionResult)>> = handles
            .into_iter()
            .map(|h| h.join().expect("campaign worker panicked"))
            .collect();
        // All workers have exited: this is the simulation wall time; the
        // merge below is timed separately (see CampaignResult::wall_secs).
        (buffers, started.elapsed().as_secs_f64())
    });

    let merge_started = Instant::now();
    let mut slots: Vec<Option<SessionResult>> = vec![None; spec.sessions.len()];
    for (i, result) in buffers.into_iter().flatten() {
        debug_assert!(slots[i].is_none(), "session {i} ran twice");
        slots[i] = Some(result);
    }
    let sessions: Vec<SessionResult> = slots
        .into_iter()
        .enumerate()
        .map(|(i, r)| r.unwrap_or_else(|| panic!("session {i} produced no result")))
        .collect();
    CampaignResult {
        sessions,
        threads,
        wall_secs,
        merge_secs: merge_started.elapsed().as_secs_f64(),
    }
}

/// Result of a streaming [`run_campaign_fold`] sweep.
#[derive(Debug, Clone)]
pub struct CampaignFold<A> {
    /// The fold accumulator after every session was applied in grid order.
    pub acc: A,
    /// Same 64-bit digest [`CampaignResult::fingerprint`] would have
    /// produced for this sweep — bit-identical to the full-result mode.
    pub fingerprint: u64,
    /// Sessions executed (== the spec's length).
    pub sessions_run: usize,
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock seconds for the whole sweep.
    pub wall_secs: f64,
}

/// Reorder buffer behind [`run_campaign_fold`]: results arrive in steal
/// order but are folded strictly by grid index, so the accumulator and the
/// incremental fingerprint see the same sequence a single-threaded run
/// would. Out-of-order results wait in `pending` — at most one in-flight
/// session per other worker (one *chunk* per worker under the mega
/// executor), so memory stays bounded by `threads × mega_chunk` rather
/// than the grid size.
struct FoldState<A> {
    next_emit: usize,
    pending: BTreeMap<usize, SessionResult>,
    acc: A,
    hasher: TraceHasher,
}

/// Streaming/bounded-memory campaign execution: instead of materialising
/// every [`SessionResult`], fold each one into `acc` in strict grid order
/// and keep only the accumulator. The returned fingerprint is
/// bit-identical to [`CampaignResult::fingerprint`] on the same spec (the
/// replay suite pins this), so grids too large to hold in memory still
/// verify against full-mode runs.
pub fn run_campaign_fold<A, F>(
    spec: &CampaignSpec,
    opts: CampaignOptions,
    init: A,
    fold: F,
) -> CampaignFold<A>
where
    A: Send,
    F: Fn(&mut A, SessionResult) + Sync,
{
    let threads = effective_threads(opts.threads, spec.sessions.len());
    let started = Instant::now();
    let next = AtomicUsize::new(0);
    let mut hasher = TraceHasher::new();
    hasher.u64(spec.sessions.len() as u64);
    let state = Mutex::new(FoldState {
        next_emit: 0,
        pending: BTreeMap::new(),
        acc: init,
        hasher,
    });

    laqa_obs::gauge!("campaign.threads").set(threads as f64);
    std::thread::scope(|scope| {
        let (next, state, fold) = (&next, &state, &fold);
        for worker in 0..threads {
            scope.spawn(move || {
                worker_loop(spec, opts, worker, next, |i, result| {
                    let mut st = state.lock().expect("campaign fold lock");
                    st.pending.insert(i, result);
                    while let Some(ready) = {
                        let at = st.next_emit;
                        st.pending.remove(&at)
                    } {
                        ready.fingerprint_into(&mut st.hasher);
                        fold(&mut st.acc, ready);
                        st.next_emit += 1;
                    }
                });
            });
        }
    });

    let state = state.into_inner().expect("campaign fold lock");
    assert!(
        state.pending.is_empty() && state.next_emit == spec.sessions.len(),
        "fold executor finished with unconsumed results"
    );
    CampaignFold {
        acc: state.acc,
        fingerprint: state.hasher.finish(),
        sessions_run: state.next_emit,
        threads,
        wall_secs: started.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> CampaignSpec {
        CampaignSpec::grid(&[TestKind::T1], &[2], &[7, 21], 4.0)
    }

    #[test]
    fn grid_enumerates_test_major() {
        let spec = CampaignSpec::grid(&TestKind::ALL, &[2, 4], &[1, 2], 10.0);
        assert_eq!(spec.len(), 8);
        assert_eq!(spec.sessions[0].label(), "T1/k2/seed1");
        assert_eq!(spec.sessions[3].label(), "T1/k4/seed2");
        assert_eq!(spec.sessions[4].label(), "T2/k2/seed1");
    }

    #[test]
    fn single_session_is_reproducible() {
        let spec = SessionSpec {
            test: TestKind::T1,
            k_max: 2,
            seed: 7,
            duration: 4.0,
            fault_intensity: None,
            transport: Transport::Rap,
            trace: None,
        };
        let a = run_session(&spec);
        let b = run_session(&spec);
        assert_eq!(a.trace_hash, b.trace_hash);
        assert_eq!(a.quality_changes, b.quality_changes);
        assert_eq!(a.backoffs, b.backoffs);
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let spec = tiny_spec();
        let serial = run_campaign(&spec, 1);
        let parallel = run_campaign(&spec, 4);
        assert_eq!(serial.fingerprint(), parallel.fingerprint());
        for (a, b) in serial.sessions.iter().zip(&parallel.sessions) {
            assert_eq!(a.spec, b.spec);
            assert_eq!(a.trace_hash, b.trace_hash);
        }
    }

    #[test]
    fn faults_grid_enumerates_intensities_and_labels_them() {
        let spec =
            CampaignSpec::faults_grid(&[TestKind::T1], &[2], &[0.0, 0.5, 1.0], &[7], 10.0);
        assert_eq!(spec.len(), 3);
        assert_eq!(spec.sessions[0].label(), "T1/k2/seed7");
        assert_eq!(spec.sessions[0].fault_intensity, None, "0.0 = baseline");
        assert_eq!(spec.sessions[1].label(), "T1/k2/seed7/f050");
        assert_eq!(spec.sessions[2].label(), "T1/k2/seed7/f100");
        assert!(!spec.sessions[2].scenario().faults.is_none());
        assert!(spec.sessions[0].scenario().faults.is_none());
    }

    #[test]
    fn mega_executor_matches_per_cell_fingerprints() {
        let spec = tiny_spec();
        let per_cell = run_campaign_opts(&spec, CampaignOptions::new(1));
        for threads in [1, 4] {
            for chunk in [1, 32] {
                let mega = run_campaign_opts(
                    &spec,
                    CampaignOptions::new(threads).mega().mega_chunk(chunk),
                );
                assert_eq!(
                    per_cell.fingerprint(),
                    mega.fingerprint(),
                    "mega executor diverged at threads={threads} chunk={chunk}"
                );
            }
        }
    }

    #[test]
    fn different_seeds_give_different_traces() {
        let spec = tiny_spec();
        let r = run_campaign(&spec, 2);
        assert_ne!(r.sessions[0].trace_hash, r.sessions[1].trace_hash);
    }

    #[test]
    fn table_and_summaries_cover_every_session() {
        let spec = tiny_spec();
        let r = run_campaign(&spec, 2);
        let table = r.table();
        for s in &r.sessions {
            assert!(table.contains(&s.spec.label()), "missing {}", s.spec.label());
        }
        let summaries = r.summaries();
        assert_eq!(summaries.len(), spec.len());
        assert!(summaries[0].experiment.starts_with("campaign/T1"));
    }
}
