//! # laqa-net — real-socket streaming over tokio UDP
//!
//! The paper's mechanisms on real sockets and the real clock: a [`wire`]
//! format for data/ACK datagrams, a paced quality-adaptive [`server`], a
//! buffering playback [`client`], a loopback bottleneck [`shaper`]
//! (serialization + drop-tail queue + delay) standing in for the paper's
//! congested Internet path, and [`session`] orchestration that wires them
//! together with optional cross-traffic.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod client;
pub mod server;
pub mod session;
pub mod shaper;
pub mod wire;

pub use client::{run_client, ClientConfig, ClientReport};
pub use server::{serve, ServerConfig, ServerReport};
pub use session::{run_session, SessionConfig, SessionReport};
pub use shaper::{Shaper, ShaperConfig};
pub use wire::{Message, WireError};
