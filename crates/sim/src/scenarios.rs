//! Canned experiment scenarios: the paper's T1 and T2 workloads and the
//! single-flow figure-1 setup, parameterized so the regenerators can sweep
//! `K_max`, bottleneck bandwidth and durations.

use crate::agents::cbr::{CbrAgent, CountingSink};
use crate::agents::monitor::QueueMonitor;
use crate::faults::{FaultInjector, FaultPlan, FaultStats, FaultWiring};
use crate::agents::qa::{QaSinkAgent, QaSourceAgent, QaTraces};
use crate::agents::rap::{RapFlowAgent, RapSinkAgent};
use crate::agents::tcp::{TcpAgent, TcpSinkAgent};
use crate::engine::{World, WorldSalvage};
use crate::link::{LinkStats, TraceDriver, TraceSchedule, BOND_PATH_SALT};
use crate::mega::{MegaEngine, MegaSessionView};
use crate::packet::{AgentId, LinkId};
use crate::sched::SchedulerKind;
use crate::topology::{Dumbbell, DumbbellConfig};
use laqa_core::{MetricsCollector, QaConfig};
use laqa_layered::LayeredEncoding;
use laqa_rap::{
    BbrConfig, BbrSender, NadaConfig, NadaSender, RapConfig, RapSender, RateController,
    WindowConfig, WindowSender,
};
use laqa_trace::TimeSeries;

/// Which congestion controller drives the QA flow (the interop axis of
/// the QA × transport matrix). Background cross-traffic is unaffected:
/// the 9 RAP and 10 TCP competitors stay the same in every cell, so the
/// axis isolates how the quality-adaptation machinery behaves over each
/// controller family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Transport {
    /// Rate-paced AIMD (the paper's RAP). The default; every seed-pinned
    /// golden runs this transport.
    #[default]
    Rap,
    /// BBR-style delivery-rate-model pacing (`laqa_rap::BbrSender`).
    Bbr,
    /// NADA-style delay-gradient pacing (`laqa_rap::NadaSender`).
    Nada,
    /// ACK-clocked TCP-like AIMD window (`laqa_rap::WindowSender`).
    Tcp,
}

impl Transport {
    /// All transports, in matrix order.
    pub const ALL: [Transport; 4] =
        [Transport::Rap, Transport::Bbr, Transport::Nada, Transport::Tcp];

    /// Short label used in session labels and CLI flags.
    pub fn label(&self) -> &'static str {
        match self {
            Transport::Rap => "rap",
            Transport::Bbr => "bbr",
            Transport::Nada => "nada",
            Transport::Tcp => "tcp",
        }
    }

    /// Nominal multiplicative decrease factor of this transport's backoff
    /// (what [`QaConfig::decrease_factor`] should be for its geometry to
    /// anticipate real backoffs).
    pub fn nominal_decrease(&self) -> f64 {
        match self {
            Transport::Rap | Transport::Tcp => 0.5,
            Transport::Bbr => laqa_rap::bbr::LOSS_BETA,
            Transport::Nada => laqa_rap::nada::NOMINAL_GAMMA,
        }
    }
}

impl std::str::FromStr for Transport {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Transport::ALL
            .into_iter()
            .find(|t| t.label() == s)
            .ok_or_else(|| format!("unknown transport {s:?} (expected rap|bbr|nada|tcp)"))
    }
}

/// Which hostile link-condition trace drives the bottleneck (the
/// `hostile_grid` campaign axis). `None` on a [`ScenarioConfig`] keeps
/// the paper's static dumbbell — and every pre-existing label, scenario
/// and fingerprint — byte-identical. Schedules are generated per
/// `(kind, seed)` by [`crate::link::TraceSchedule`]'s constructors and
/// advanced by [`crate::link::TraceDriver`] agents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum TraceKind {
    /// LTE-style capacity random walk (100 ms – 1 s swings).
    Lte,
    /// On-off choke against a deep standing drop-tail buffer
    /// (bufferbloat: the choked phases fill the queue and inflate RTT).
    Bloat,
    /// Slow deterministic capacity ramp (one cosine cycle per run,
    /// looping).
    Diurnal,
    /// Two bonded forward paths with independent LTE-style schedules and
    /// a deterministic round-robin striping relay
    /// ([`crate::agents::bond::BondAgent`]).
    Bonded,
}

impl TraceKind {
    /// All trace kinds, in corpus order.
    pub const ALL: [TraceKind; 4] = [
        TraceKind::Lte,
        TraceKind::Bloat,
        TraceKind::Diurnal,
        TraceKind::Bonded,
    ];

    /// Short label used in session labels and CLI flags.
    pub fn label(&self) -> &'static str {
        match self {
            TraceKind::Lte => "lte",
            TraceKind::Bloat => "bloat",
            TraceKind::Diurnal => "diurnal",
            TraceKind::Bonded => "bonded",
        }
    }
}

impl std::str::FromStr for TraceKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        TraceKind::ALL
            .into_iter()
            .find(|t| t.label() == s)
            .ok_or_else(|| {
                format!("unknown trace {s:?} (expected lte|bloat|diurnal|bonded)")
            })
    }
}

/// Scenario parameters (defaults = the paper's T1 at `K_max = 2`).
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioConfig {
    /// Dumbbell parameters.
    pub dumbbell: DumbbellConfig,
    /// Background RAP flows (the paper uses 9).
    pub n_rap: usize,
    /// Background TCP flows (the paper uses 10).
    pub n_tcp: usize,
    /// Optional CBR burst `(start, stop, rate_bytes_per_sec)` — T2's
    /// half-bottleneck burst.
    pub cbr: Option<(f64, f64, f64)>,
    /// QA configuration (layer rate, `K_max`, …).
    pub qa: QaConfig,
    /// RAP protocol parameters shared by all RAP flows.
    pub rap: RapConfig,
    /// Simulated duration (seconds).
    pub duration: f64,
    /// RNG seed.
    pub seed: u64,
    /// QA allocation period (seconds).
    pub tick_dt: f64,
    /// When the QA flow joins (seconds). Letting the background flows
    /// saturate the bottleneck first gives the QA flow the gentle ramp of
    /// the paper's figure 11 instead of an empty-network rate overshoot.
    pub qa_start: f64,
    /// Layers `0..n` protected by selective retransmission (§1.3);
    /// 0 = off (the paper's evaluation setting).
    pub retransmit_protect: usize,
    /// Fault-injection schedule. [`FaultPlan::none`] (the default for T1
    /// and T2) adds no agent at all, so baseline trajectories — and every
    /// seed-pinned golden built on them — stay bit-identical.
    pub faults: FaultPlan,
    /// Congestion controller driving the QA flow. [`Transport::Rap`] (the
    /// default) reproduces the paper's system exactly.
    pub transport: Transport,
    /// Hostile link-condition trace on the bottleneck. `None` (the
    /// default for T1 and T2) attaches no schedule and no driver agent,
    /// so baseline trajectories stay bit-identical.
    pub trace: Option<TraceKind>,
}

impl ScenarioConfig {
    /// The paper's T1: 1 QA-RAP + 9 RAP + 10 TCP through an 800 Kb/s,
    /// 40 ms-RTT dumbbell.
    ///
    /// The paper's per-flow fair share at 800 Kb/s over 20 flows is
    /// ~5 KB/s; for the layer geometry to span 3–4 layers (as in the
    /// paper's figures) the layer rate defaults to `C = 1.25 KB/s` with
    /// 250-byte packets, preserving all the ratios of the original setup
    /// (fair share ≈ 4·C, packet ≈ C/5·s).
    pub fn t1(k_max: u32, duration: f64, seed: u64) -> Self {
        ScenarioConfig {
            dumbbell: DumbbellConfig::paper_base(),
            n_rap: 9,
            n_tcp: 10,
            cbr: None,
            qa: QaConfig {
                layer_rate: 1_250.0,
                max_layers: 10,
                k_max,
                startup_buffer_secs: 0.5,
                underflow_slack_bytes: 1_000.0, // 4 packets of 250 B
                ..QaConfig::default()
            },
            rap: RapConfig {
                packet_size: 250.0,
                initial_rate: 1_000.0,
                initial_rtt: 0.06,
                // A stored-video server has no use for bandwidth beyond the
                // full encoding rate plus filling headroom (the paper's
                // footnote 2: implementations must not ignore flow
                // control); the cap also keeps RAP's pre-loss startup ramp
                // from instantiating the whole layer stack at once.
                max_rate: 1.25 * 10.0 * 1_250.0,
                ..RapConfig::default()
            },
            duration,
            seed,
            tick_dt: 0.05,
            qa_start: 5.0,
            retransmit_protect: 0,
            faults: FaultPlan::none(),
            transport: Transport::Rap,
            trace: None,
        }
    }

    /// Switch the QA flow onto `transport` and thread the transport's
    /// nominal decrease factor into the QA geometry. For
    /// [`Transport::Rap`] this is the identity (factor 0.5 is the
    /// default), so RAP configs stay bit-identical.
    pub fn with_transport(mut self, transport: Transport) -> Self {
        self.transport = transport;
        self.qa.decrease_factor = transport.nominal_decrease();
        self
    }

    /// Put the bottleneck on a hostile link-condition trace (and, for
    /// [`TraceKind::Bloat`], deepen the drop-tail queue into the standing
    /// buffer that makes choke phases bloat instead of drop): ~4x the
    /// paper's queue, over a second of buffering at nominal rate.
    pub fn with_trace(mut self, kind: TraceKind) -> Self {
        self.trace = Some(kind);
        if kind == TraceKind::Bloat {
            self.dumbbell.queue_packets = 600;
        }
        self
    }

    /// The paper's T2: T1 plus a CBR burst at half the bottleneck from
    /// `t = start` to `t = stop` (the paper uses 30 s → 60 s of a 90 s
    /// run).
    pub fn t2(k_max: u32, duration: f64, seed: u64) -> Self {
        let mut cfg = Self::t1(k_max, duration, seed);
        let half = cfg.dumbbell.bottleneck_bw / 2.0;
        cfg.cbr = Some((duration / 3.0, 2.0 * duration / 3.0, half));
        cfg
    }
}

/// Everything a regenerator needs after a scenario run.
pub struct ScenarioOutcome {
    /// Traces from the QA source (figure panels).
    pub traces: QaTraces,
    /// QA event log/metrics (Tables 1 and 2 inputs).
    pub metrics: MetricsCollector,
    /// Receiver-side per-layer buffer traces (ground truth).
    pub rx_buffers: Vec<TimeSeries>,
    /// Receiver-observed playout underflows (all layers).
    pub rx_underflows: u64,
    /// Receiver-observed *base-layer* underflow events (visible stalls;
    /// should be zero in a healthy run).
    pub rx_base_underflows: u64,
    /// Backoffs the QA flow experienced.
    pub backoffs: u64,
    /// Bottleneck link counters.
    pub bottleneck: LinkStats,
    /// Background RAP throughput (bytes/s averaged over the run).
    pub rap_throughput: Vec<f64>,
    /// Background TCP goodput (bytes/s averaged over the run).
    pub tcp_goodput: Vec<f64>,
    /// Final sender-side buffer estimates.
    pub final_buffers: Vec<f64>,
    /// Bottleneck queue occupancy over time (packets).
    pub queue_trace: TimeSeries,
    /// Discrete events the engine dispatched during the run (deterministic;
    /// feeds the events/sec throughput figure in run summaries).
    pub events_processed: u64,
    /// Fault-injection transition counters (all zero when the scenario ran
    /// without a fault plan).
    pub fault_stats: FaultStats,
    /// Bytes the receiver's *base layer* wanted but could not play
    /// (starvation depth; zero in a healthy run).
    pub base_starved_bytes: f64,
    /// Receiver bytes written off by layer drops (satellite of the §5
    /// efficiency metric; see `LayerBuffer::discarded_bytes`).
    pub discarded_bytes: f64,
    /// Trace schedule points applied across all trace-driven links (zero
    /// when the scenario ran without a trace).
    pub trace_changes: u64,
    /// Counters of the second bonded forward path, when the scenario was
    /// bonded (the primary path's counters are in `bottleneck`).
    pub bond_leg: Option<LinkStats>,
}

/// Build and run a scenario, returning the collected outcome. Uses the
/// ambient event-scheduler kind (see [`crate::sched::ambient_scheduler`]).
pub fn run_scenario(cfg: &ScenarioConfig) -> ScenarioOutcome {
    run_scenario_with(cfg, crate::sched::ambient_scheduler())
}

/// Build and run a scenario on an explicit event-scheduler
/// implementation. The outcome — including its
/// [`crate::campaign::hash_outcome`] fingerprint — is bit-identical for
/// every [`SchedulerKind`]; `tests/sched_differential.rs` pins this.
pub fn run_scenario_with(cfg: &ScenarioConfig, sched: SchedulerKind) -> ScenarioOutcome {
    let world = World::with_scheduler(cfg.seed, sched);
    run_scenario_core(cfg, world, None).0
}

/// Run several scenarios multiplexed on one [`MegaEngine`] (all starting
/// at global time zero), returning outcomes in input order. Every outcome
/// — including its [`crate::campaign::hash_outcome`] fingerprint — is
/// bit-identical to [`run_scenario_with`] on the same config;
/// `tests/mega_differential.rs` pins this.
pub fn run_scenarios_mega(cfgs: &[ScenarioConfig], sched: SchedulerKind) -> Vec<ScenarioOutcome> {
    let staggered: Vec<(ScenarioConfig, f64)> =
        cfgs.iter().map(|cfg| (cfg.clone(), 0.0)).collect();
    run_scenarios_mega_staggered(&staggered, sched)
}

/// [`run_scenarios_mega`] with a per-session global start offset
/// (seconds): session `i` begins its local time zero at `offset_i`. The
/// offset shifts when the session runs, never what it computes — each
/// outcome stays bit-identical to an isolated [`run_scenario_with`].
pub fn run_scenarios_mega_staggered(
    cfgs: &[(ScenarioConfig, f64)],
    sched: SchedulerKind,
) -> Vec<ScenarioOutcome> {
    let mut engine = MegaEngine::with_scheduler(sched);
    engine.reserve(cfgs.len(), cfgs.len() * 64);
    let mut admitted = Vec::with_capacity(cfgs.len());
    let mut t_end = 0.0f64;
    for (i, (cfg, offset)) in cfgs.iter().enumerate() {
        let world = World::with_scheduler(cfg.seed, sched);
        let (mut world, handles) = build_scenario(cfg, world, None);
        // Flight-recorder track = input index, matching how the campaign
        // executors label cells by grid index.
        world.set_flight_id(i as u64);
        let sid = engine.add_world(world, *offset, cfg.duration);
        t_end = t_end.max(offset + cfg.duration);
        admitted.push((cfg, handles, sid));
    }
    engine.run_until(t_end);
    admitted
        .into_iter()
        .map(|(cfg, handles, sid)| extract_outcome(cfg, &engine.session(sid), &handles))
        .collect()
}

/// Warm per-worker world state: salvaged engine storage of sessions this
/// worker already ran plus a shared QA geometry memo. One pool lives on
/// each campaign worker thread; from its second session onward the
/// scheduler slab, link ring buffers and agents vector are recycled and
/// geometry derivations hit the memo, which is where the warm-world
/// speedup comes from. Results are bit-identical to the cold path — the
/// pool is invisible to the simulation (pinned by replay tests and the
/// `laqa-bench campaign` fingerprint gate). The bank holds multiple
/// salvages because a mega worker retires a whole chunk of sessions at
/// once before building the next chunk.
#[derive(Default)]
pub struct WorldPool {
    salvages: Vec<WorldSalvage>,
    geometry: Option<laqa_core::SharedGeometryCache>,
}

impl WorldPool {
    /// Fresh pool: first session is cold, everything after is warm.
    pub fn new() -> Self {
        WorldPool {
            salvages: Vec::new(),
            geometry: Some(laqa_core::GeometryCache::shared()),
        }
    }

    /// Geometry-memo `(hits, misses)` so far (zeros for a fresh pool).
    pub fn geometry_stats(&self) -> (u64, u64) {
        self.geometry
            .as_ref()
            .map(|g| g.lock().expect("geometry cache poisoned").stats())
            .unwrap_or((0, 0))
    }

    /// True once a retired world's storage is banked for reuse.
    pub fn is_warm(&self) -> bool {
        !self.salvages.is_empty()
    }

    /// Withdraw one banked salvage, if any (LIFO).
    pub(crate) fn take_salvage(&mut self) -> Option<WorldSalvage> {
        self.salvages.pop()
    }

    /// Bank a retired world's storage for the next session.
    pub(crate) fn bank_salvage(&mut self, salvage: WorldSalvage) {
        self.salvages.push(salvage);
    }

    /// The shared QA geometry memo, if this pool carries one.
    pub(crate) fn geometry(&self) -> Option<&laqa_core::SharedGeometryCache> {
        self.geometry.as_ref()
    }
}

/// Run a scenario through a [`WorldPool`], recycling the pool's salvaged
/// engine storage and shared geometry memo, then banking this session's
/// world back into the pool. Bit-identical outcome to
/// [`run_scenario_with`].
pub fn run_scenario_pooled(
    cfg: &ScenarioConfig,
    sched: SchedulerKind,
    pool: &mut WorldPool,
) -> ScenarioOutcome {
    let world = match pool.take_salvage() {
        Some(salvage) => World::with_salvage(cfg.seed, sched, salvage),
        None => World::with_scheduler(cfg.seed, sched),
    };
    let (outcome, world) = run_scenario_core(cfg, world, pool.geometry());
    pool.bank_salvage(world.salvage());
    outcome
}

/// Agent ids and link handles recorded while building a scenario, so the
/// outcome can be extracted later from whichever engine ran the world —
/// solo [`World::run_until`] or a multiplexed [`MegaEngine`] slot.
pub(crate) struct ScenarioHandles {
    qa_sink: AgentId,
    qa_src: AgentId,
    /// Which [`QaSourceAgent`] instantiation sits at `qa_src` (extraction
    /// must downcast to the matching concrete type).
    transport: Transport,
    rap_sinks: Vec<AgentId>,
    tcp_sinks: Vec<AgentId>,
    injector: Option<AgentId>,
    monitor: AgentId,
    bottleneck: LinkId,
    /// Trace drivers advancing the traced links (empty without a trace).
    trace_drivers: Vec<AgentId>,
    /// Second bonded forward path (bonded scenarios only).
    bond_leg: Option<LinkId>,
}

/// Read-only access to a finished session's state, abstracting over a
/// solo [`World`] and a [`MegaSessionView`] into the megasession table.
/// Both impls delegate to identically-shaped inherent methods, so
/// extraction code is byte-for-byte the same on either path.
pub(crate) trait OutcomeSource {
    /// Downcast the agent at `id`, if present and of type `T`.
    fn agent<T: 'static>(&self, id: AgentId) -> Option<&T>;
    /// Counters of link `link`.
    fn link_stats(&self, link: LinkId) -> LinkStats;
    /// Events dispatched for this session.
    fn events_processed(&self) -> u64;
}

impl OutcomeSource for World {
    fn agent<T: 'static>(&self, id: AgentId) -> Option<&T> {
        World::agent(self, id)
    }
    fn link_stats(&self, link: LinkId) -> LinkStats {
        World::link_stats(self, link)
    }
    fn events_processed(&self) -> u64 {
        World::events_processed(self)
    }
}

impl OutcomeSource for MegaSessionView<'_> {
    fn agent<T: 'static>(&self, id: AgentId) -> Option<&T> {
        MegaSessionView::agent(self, id)
    }
    fn link_stats(&self, link: LinkId) -> LinkStats {
        MegaSessionView::link_stats(self, link)
    }
    fn events_processed(&self) -> u64 {
        MegaSessionView::events_processed(self)
    }
}

/// Shared scenario body: populate `world` with the dumbbell and agents,
/// run it, extract the outcome, and hand the world back so pooled callers
/// can salvage its storage. `geometry`, when present, is attached to the
/// QA controller so state-sequence derivations go through the shared memo.
fn run_scenario_core(
    cfg: &ScenarioConfig,
    world: World,
    geometry: Option<&laqa_core::SharedGeometryCache>,
) -> (ScenarioOutcome, World) {
    let (mut world, handles) = build_scenario(cfg, world, geometry);
    world.run_until(cfg.duration);
    let outcome = extract_outcome(cfg, &world, &handles);
    (outcome, world)
}

/// Populate `world` with the scenario's dumbbell and agents without
/// running it; the returned [`ScenarioHandles`] lets [`extract_outcome`]
/// find everything afterward. Construction order — and therefore every
/// agent id, link id and RNG draw — is identical to what the monolithic
/// scenario body always did, so trajectories stay bit-identical.
pub(crate) fn build_scenario(
    cfg: &ScenarioConfig,
    world: World,
    geometry: Option<&laqa_core::SharedGeometryCache>,
) -> (World, ScenarioHandles) {
    let mut d = Dumbbell::with_world(cfg.dumbbell, world);
    // The bonded corpus adds its second forward bottleneck *before* any
    // per-flow access links, so link numbering in every other scenario —
    // and therefore every pre-existing golden — is untouched.
    let bond_leg = (cfg.trace == Some(TraceKind::Bonded)).then(|| d.add_bond_path());
    let pkt = cfg.rap.packet_size as u32;
    // Deterministic per-seed jitter for flow start times (phase effects in
    // drop-tail queues are otherwise identical across seeds).
    let mut jitter_state = cfg.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
    let mut jitter = move || {
        jitter_state ^= jitter_state >> 12;
        jitter_state ^= jitter_state << 25;
        jitter_state ^= jitter_state >> 27;
        (jitter_state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 40) as f64 / (1u64 << 24) as f64
    };

    // Agent ids are assigned in creation order. Create sinks first (they
    // need their source id, which we can predict): layout is
    //   0: QA sink, 1: QA source,
    //   then per background RAP flow: sink, source,
    //   then per TCP flow: sink, source,
    //   then CBR sink + source (if any).
    let qa_sink_id = 0;
    let qa_src_id = 1;
    // Bonded scenarios interpose the striping relay between the QA source
    // and sink: the source addresses packets to the relay (created at the
    // predicted id right after the source), which re-routes each one onto
    // a bonded leg toward the real sink. ACKs flow sink → source directly,
    // so only the forward data path is striped.
    let bond_relay_id = bond_leg.map(|_| qa_src_id + 1);
    let qa_dst = bond_relay_id.unwrap_or(qa_sink_id);
    {
        let rev = d.reverse_route();
        let encoding =
            LayeredEncoding::linear(cfg.qa.max_layers, cfg.qa.layer_rate).expect("valid encoding");
        let sink = QaSinkAgent::new(
            qa_src_id,
            rev,
            0,
            encoding,
            // Margin over the server's threshold: see QaSinkAgent::new.
            2.0 * cfg.qa.startup_buffer_secs,
            cfg.tick_dt,
        );
        assert_eq!(d.world.add_agent(Box::new(sink)), qa_sink_id);
        let fwd = if bond_leg.is_some() {
            d.access_route() // relay picks the bottleneck leg per packet
        } else {
            d.forward_route()
        };
        // Finalize whichever QaSourceAgent<T> instantiation the transport
        // selects; identical wiring for every controller family.
        fn finish_qa_src<T: RateController + 'static>(
            world: &mut World,
            mut src: QaSourceAgent<T>,
            cfg: &ScenarioConfig,
            geometry: Option<&laqa_core::SharedGeometryCache>,
            expect_id: AgentId,
        ) {
            src.start_at = cfg.qa_start;
            src.retransmit_protect = cfg.retransmit_protect;
            if let Some(cache) = geometry {
                src.qa_mut().set_geometry_cache(cache.clone());
            }
            assert_eq!(world.add_agent(Box::new(src)), expect_id);
        }
        match cfg.transport {
            Transport::Rap => {
                let src = QaSourceAgent::new(
                    qa_dst,
                    fwd,
                    0,
                    cfg.rap.clone(),
                    cfg.qa.clone(),
                    cfg.tick_dt,
                );
                finish_qa_src(&mut d.world, src, cfg, geometry, qa_src_id);
            }
            Transport::Bbr => {
                let bbr = BbrSender::new(
                    BbrConfig {
                        packet_size: cfg.rap.packet_size,
                        initial_rate: cfg.rap.initial_rate,
                        initial_rtt: cfg.rap.initial_rtt,
                        reorder_threshold: cfg.rap.reorder_threshold,
                        max_rate: cfg.rap.max_rate,
                        ..BbrConfig::default()
                    },
                    0.0,
                );
                let src = QaSourceAgent::with_controller(
                    qa_dst,
                    fwd,
                    0,
                    bbr,
                    pkt,
                    cfg.qa.clone(),
                    cfg.tick_dt,
                );
                finish_qa_src(&mut d.world, src, cfg, geometry, qa_src_id);
            }
            Transport::Nada => {
                let nada = NadaSender::new(
                    NadaConfig {
                        packet_size: cfg.rap.packet_size,
                        initial_rate: cfg.rap.initial_rate,
                        initial_rtt: cfg.rap.initial_rtt,
                        reorder_threshold: cfg.rap.reorder_threshold,
                        max_rate: cfg.rap.max_rate,
                        ..NadaConfig::default()
                    },
                    0.0,
                );
                let src = QaSourceAgent::with_controller(
                    qa_dst,
                    fwd,
                    0,
                    nada,
                    pkt,
                    cfg.qa.clone(),
                    cfg.tick_dt,
                );
                finish_qa_src(&mut d.world, src, cfg, geometry, qa_src_id);
            }
            Transport::Tcp => {
                let window = WindowSender::new(
                    WindowConfig {
                        packet_size: cfg.rap.packet_size,
                        initial_rtt: cfg.rap.initial_rtt,
                        reorder_threshold: cfg.rap.reorder_threshold,
                        // Flow-control cap equivalent to RAP's max_rate at
                        // a generous queueing-inclusive RTT of 0.5 s; the
                        // floor keeps the window usable on fast paths.
                        max_cwnd: (cfg.rap.max_rate * 0.5 / cfg.rap.packet_size).max(8.0),
                        ..WindowConfig::default()
                    },
                    0.0,
                );
                let src = QaSourceAgent::with_controller(
                    qa_dst,
                    fwd,
                    0,
                    window,
                    pkt,
                    cfg.qa.clone(),
                    cfg.tick_dt,
                );
                finish_qa_src(&mut d.world, src, cfg, geometry, qa_src_id);
            }
        }
    }

    if let Some(leg_b) = bond_leg {
        let relay = d.world.add_agent(Box::new(crate::agents::bond::BondAgent::new(
            qa_sink_id,
            vec![
                crate::packet::Route::from(vec![d.bottleneck()]),
                crate::packet::Route::from(vec![leg_b]),
            ],
        )));
        assert_eq!(Some(relay), bond_relay_id, "relay id predicted above");
    }

    let mut rap_sinks = Vec::new();
    for i in 0..cfg.n_rap {
        let flow = 1 + i as u32;
        let sink_id = d.world.add_agent(Box::new(RapSinkAgent::new(
            0, // fixed up immediately below: source id is sink_id + 1
            Vec::new(),
            flow,
        )));
        let rev = d.reverse_route();
        {
            let sink = d
                .world
                .agent_mut::<RapSinkAgent>(sink_id)
                .expect("just added");
            sink.src = sink_id + 1;
            sink.reverse_route = rev;
        }
        let fwd = d.forward_route();
        let mut rap_src = RapFlowAgent::new(sink_id, fwd, flow, cfg.rap.clone());
        rap_src.start_at = 0.05 + i as f64 * 0.11 + 0.2 * jitter(); // staggered joins
        let src_id = d.world.add_agent(Box::new(rap_src));
        assert_eq!(src_id, sink_id + 1);
        rap_sinks.push(sink_id);
    }

    let mut tcp_sinks = Vec::new();
    for i in 0..cfg.n_tcp {
        let flow = 100 + i as u32;
        let sink_id = d
            .world
            .add_agent(Box::new(TcpSinkAgent::new(0, Vec::new(), flow)));
        let rev = d.reverse_route();
        {
            let sink = d
                .world
                .agent_mut::<TcpSinkAgent>(sink_id)
                .expect("just added");
            sink.src = sink_id + 1;
            sink.reverse_route = rev;
        }
        let fwd = d.forward_route();
        // Stagger TCP starts slightly to avoid phase effects.
        let start = 0.1 + i as f64 * 0.037 + 0.2 * jitter();
        let src_id = d
            .world
            .add_agent(Box::new(TcpAgent::new(sink_id, fwd, flow, pkt, start)));
        assert_eq!(src_id, sink_id + 1);
        tcp_sinks.push(sink_id);
    }

    if let Some((start, stop, rate)) = cfg.cbr {
        let sink_id = d.world.add_agent(Box::new(CountingSink::default()));
        let fwd = d.forward_route();
        d.world.add_agent(Box::new(CbrAgent::new(
            sink_id, fwd, 999, rate, pkt, start, stop,
        )));
    }

    // The fault injector (and its churn sink) exist only when the plan has
    // at least one fault family enabled; an empty plan leaves the agent
    // list, the link set and every RNG stream untouched.
    let injector_id = if cfg.faults.is_none() {
        None
    } else {
        let churn_sink = d.world.add_agent(Box::new(CountingSink::default()));
        let churn_route = d.forward_route();
        let churn_rate = cfg
            .faults
            .churn
            .map(|c| c.rate_frac * cfg.dumbbell.bottleneck_bw)
            .unwrap_or(0.0);
        let wiring = FaultWiring {
            forward: d.bottleneck(),
            reverse: d.reverse_bottleneck(),
            churn_dst: churn_sink,
            churn_route,
            churn_rate,
            churn_packet: pkt,
            churn_flow: 998,
        };
        Some(d.world.add_agent(Box::new(FaultInjector::new(
            cfg.faults.clone(),
            cfg.seed,
            wiring,
        ))))
    };

    let bottleneck = d.bottleneck();
    let monitor_id = d.world.add_agent(Box::new(QueueMonitor::new(
        vec![bottleneck],
        cfg.tick_dt * 4.0,
    )));

    // Trace-driven links last: attach each schedule (pre-materialized
    // from its own salted RNG — no world RNG is consumed) and add one
    // driver agent per traced link. Baseline scenarios skip this entirely.
    let mut trace_drivers = Vec::new();
    if let Some(kind) = cfg.trace {
        let nominal = cfg.dumbbell.bottleneck_bw;
        let mut traced: Vec<(LinkId, TraceSchedule)> = Vec::new();
        match kind {
            TraceKind::Lte => {
                traced.push((bottleneck, TraceSchedule::lte(cfg.seed, nominal, cfg.duration)));
            }
            TraceKind::Bloat => traced.push((
                bottleneck,
                TraceSchedule::bufferbloat(cfg.seed, nominal, cfg.duration),
            )),
            TraceKind::Diurnal => traced.push((
                bottleneck,
                TraceSchedule::diurnal(nominal, cfg.duration.max(1.0)),
            )),
            TraceKind::Bonded => {
                traced.push((bottleneck, TraceSchedule::lte(cfg.seed, nominal, cfg.duration)));
                traced.push((
                    bond_leg.expect("bonded scenarios create the second leg"),
                    TraceSchedule::lte(cfg.seed ^ BOND_PATH_SALT, nominal, cfg.duration),
                ));
            }
        }
        for (link, schedule) in traced {
            d.world.set_link_trace(link, schedule);
            trace_drivers.push(d.world.add_agent(Box::new(TraceDriver::new(link))));
        }
    }
    (
        d.world,
        ScenarioHandles {
            qa_sink: qa_sink_id,
            qa_src: qa_src_id,
            transport: cfg.transport,
            rap_sinks,
            tcp_sinks,
            injector: injector_id,
            monitor: monitor_id,
            bottleneck,
            trace_drivers,
            bond_leg,
        },
    )
}

/// Collect a [`ScenarioOutcome`] from a finished session, whichever
/// engine ran it (see [`OutcomeSource`]).
pub(crate) fn extract_outcome<S: OutcomeSource>(
    cfg: &ScenarioConfig,
    world: &S,
    handles: &ScenarioHandles,
) -> ScenarioOutcome {
    let pkt = cfg.rap.packet_size as u32;
    let rap_throughput: Vec<f64> = handles
        .rap_sinks
        .iter()
        .map(|&s| world.agent::<RapSinkAgent>(s).unwrap().bytes_received as f64 / cfg.duration)
        .collect();
    let tcp_goodput: Vec<f64> = handles
        .tcp_sinks
        .iter()
        .map(|&s| {
            world.agent::<TcpSinkAgent>(s).unwrap().delivered as f64 * pkt as f64 / cfg.duration
        })
        .collect();

    let bottleneck_stats = world.link_stats(handles.bottleneck);
    let (rx_buffers, rx_underflows, rx_base_underflows, base_starved_bytes, discarded_bytes) = {
        let sink: &QaSinkAgent = world.agent(handles.qa_sink).unwrap();
        let stats = sink.receiver.stats();
        let base = stats.underflows.first().copied().unwrap_or(0);
        let starved = stats.starved.first().copied().unwrap_or(0.0);
        let discarded = sink.receiver.total_discarded();
        (
            sink.buffer_trace.clone(),
            sink.underflows,
            base,
            starved,
            discarded,
        )
    };
    let fault_stats = handles
        .injector
        .and_then(|id| world.agent::<FaultInjector>(id))
        .map(|f| f.stats)
        .unwrap_or_default();
    let queue_trace = world
        .agent::<QueueMonitor>(handles.monitor)
        .map(|m| m.series[0].clone())
        .unwrap_or_default();
    let events_processed = world.events_processed();
    let trace_changes = handles
        .trace_drivers
        .iter()
        .filter_map(|&id| world.agent::<TraceDriver>(id))
        .map(|t| t.changes)
        .sum();
    let bond_leg = handles.bond_leg.map(|l| world.link_stats(l));
    // The QA source's concrete type depends on the transport; downcast to
    // the matching instantiation and pull out the identical field set.
    fn qa_src_parts<S: OutcomeSource, T: RateController + 'static>(
        world: &S,
        id: AgentId,
    ) -> (QaTraces, MetricsCollector, u64, Vec<f64>) {
        let src: &QaSourceAgent<T> = world.agent(id).unwrap();
        (
            src.traces.clone(),
            src.qa().metrics().clone(),
            src.backoffs,
            src.qa().buffers().to_vec(),
        )
    }
    let (traces, metrics, backoffs, final_buffers) = match handles.transport {
        Transport::Rap => qa_src_parts::<S, RapSender>(world, handles.qa_src),
        Transport::Bbr => qa_src_parts::<S, BbrSender>(world, handles.qa_src),
        Transport::Nada => qa_src_parts::<S, NadaSender>(world, handles.qa_src),
        Transport::Tcp => qa_src_parts::<S, WindowSender>(world, handles.qa_src),
    };
    ScenarioOutcome {
        traces,
        metrics,
        rx_buffers,
        rx_underflows,
        rx_base_underflows,
        backoffs,
        bottleneck: bottleneck_stats,
        rap_throughput,
        tcp_goodput,
        final_buffers,
        queue_trace,
        events_processed,
        fault_stats,
        base_starved_bytes,
        discarded_bytes,
        trace_changes,
        bond_leg,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t1_runs_and_adapts() {
        let cfg = ScenarioConfig::t1(2, 30.0, 7);
        let out = run_scenario(&cfg);
        // The QA flow must have reached more than one layer and survived
        // backoffs without starving the base layer.
        let max_layers = out.traces.n_active.max().unwrap_or(0.0);
        assert!(max_layers >= 2.0, "n_active peaked at {max_layers}");
        assert!(out.backoffs > 0, "competition must cause backoffs");
        assert!(out.bottleneck.dropped > 0);
        assert_eq!(out.metrics.stalls(), 0, "base layer must not stall");
        // Background flows made progress.
        assert!(out.rap_throughput.iter().all(|&t| t > 0.0));
        assert!(out.tcp_goodput.iter().all(|&t| t > 0.0));
    }

    #[test]
    fn t2_burst_forces_quality_reduction() {
        let cfg = ScenarioConfig::t2(2, 45.0, 7);
        let out = run_scenario(&cfg);
        let n = &out.traces.n_active;
        // Peak layer count before the burst vs the minimum during it.
        let before: f64 = n
            .points
            .iter()
            .filter(|&&(t, _)| t > 5.0 && t < 15.0)
            .map(|&(_, v)| v)
            .fold(0.0, f64::max);
        let during: f64 = n
            .points
            .iter()
            .filter(|&&(t, _)| t > 17.0 && t < 30.0)
            .map(|&(_, v)| v)
            .fold(f64::MAX, f64::min);
        assert!(
            during < before,
            "CBR burst should reduce quality: before {before}, during {during}"
        );
        assert_eq!(out.metrics.stalls(), 0);
    }

    #[test]
    fn scenario_is_deterministic() {
        let cfg = ScenarioConfig::t1(2, 10.0, 99);
        let a = run_scenario(&cfg);
        let b = run_scenario(&cfg);
        assert_eq!(a.traces.n_active.points, b.traces.n_active.points);
        assert_eq!(a.bottleneck.dropped, b.bottleneck.dropped);
    }
}
