//! RAP receiver: acknowledges every data packet with redundant reception
//! information.
//!
//! Each ACK carries the sequence being acknowledged, the highest in-order
//! sequence (cumulative ACK), and a 64-bit bitmask of receptions just below
//! the highest received sequence. The redundancy makes loss detection
//! robust to ACK loss on the reverse path — any later ACK repairs the
//! sender's view.

use std::collections::BTreeSet;

/// Acknowledgement contents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AckInfo {
    /// Sequence of the data packet that triggered this ACK.
    pub ack_seq: u64,
    /// Highest sequence such that all sequences `<= cum_seq` arrived
    /// (`u64::MAX` encodes "nothing in order yet" — i.e. packet 0 missing).
    pub cum_seq: u64,
    /// Highest sequence received so far.
    pub highest: u64,
    /// Reception bitmask: bit `i` set ⇔ sequence `highest − 1 − i`
    /// arrived (for `i` in `0..64`).
    pub mask: u64,
}

impl AckInfo {
    /// Whether this ACK proves reception of `seq`.
    pub fn proves_received(&self, seq: u64) -> bool {
        if seq == self.ack_seq || seq == self.highest {
            return true;
        }
        if self.cum_seq != u64::MAX && seq <= self.cum_seq {
            return true;
        }
        if seq < self.highest {
            let dist = self.highest - 1 - seq;
            if dist < 64 {
                return self.mask & (1u64 << dist) != 0;
            }
        }
        false
    }
}

/// Receiver-side reception state that mints [`AckInfo`]s.
#[derive(Debug, Clone, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RapReceiverState {
    /// Highest in-order sequence (None until seq 0 arrives).
    cum: Option<u64>,
    /// Out-of-order receptions above `cum`.
    pending: BTreeSet<u64>,
    /// Highest sequence seen.
    highest: Option<u64>,
    /// Count of received packets (including duplicates).
    received: u64,
    /// Count of duplicate receptions.
    duplicates: u64,
}

impl RapReceiverState {
    /// Fresh receiver state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Packets received (excluding duplicates).
    pub fn unique_received(&self) -> u64 {
        self.received - self.duplicates
    }

    /// Duplicate receptions observed.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Highest in-order sequence, if any.
    pub fn cumulative(&self) -> Option<u64> {
        self.cum
    }

    /// Process an arriving data packet and mint the ACK to send back.
    pub fn on_data(&mut self, seq: u64) -> AckInfo {
        self.received += 1;
        let already = match self.cum {
            Some(c) if seq <= c => true,
            _ => self.pending.contains(&seq),
        };
        if already {
            self.duplicates += 1;
        } else {
            self.pending.insert(seq);
            // Advance the cumulative pointer through any now-contiguous run.
            loop {
                let next = self.cum.map_or(0, |c| c + 1);
                if self.pending.remove(&next) {
                    self.cum = Some(next);
                } else {
                    break;
                }
            }
        }
        self.highest = Some(self.highest.map_or(seq, |h| h.max(seq)));
        let highest = self.highest.unwrap();
        // Build the mask for highest-1 down to highest-64: bit `i` covers
        // sequence `highest - 1 - i`, received iff at/below the cumulative
        // pointer or parked in `pending`. Both sources translate to bit
        // runs directly — the cumulative prefix is one shifted all-ones
        // word, and `pending` (out-of-order holes only, normally empty)
        // contributes one bit per member in window — so no per-bit probe
        // loop is needed on this per-packet path.
        let mut mask = 0u64;
        if let (Some(c), true) = (self.cum, highest >= 1) {
            let lo = highest - 1; // sequence covered by bit 0
            if c >= lo {
                mask = u64::MAX;
            } else if lo - c < 64 {
                mask = u64::MAX << (lo - c);
            }
        }
        for &p in self.pending.range(highest.saturating_sub(64)..highest) {
            mask |= 1 << (highest - 1 - p);
        }
        if highest < 64 {
            // Bits at and above `highest` would name negative sequences.
            mask &= (1u64 << highest) - 1;
        }
        AckInfo {
            ack_seq: seq,
            cum_seq: self.cum.unwrap_or(u64::MAX),
            highest,
            mask,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_arrival_advances_cumulative() {
        let mut r = RapReceiverState::new();
        for seq in 0..5 {
            let ack = r.on_data(seq);
            assert_eq!(ack.cum_seq, seq);
            assert_eq!(ack.ack_seq, seq);
        }
        assert_eq!(r.unique_received(), 5);
    }

    #[test]
    fn gap_freezes_cumulative_until_filled() {
        let mut r = RapReceiverState::new();
        r.on_data(0);
        let ack = r.on_data(2);
        assert_eq!(ack.cum_seq, 0);
        assert_eq!(ack.highest, 2);
        let ack = r.on_data(1);
        assert_eq!(ack.cum_seq, 2);
    }

    #[test]
    fn mask_encodes_recent_receptions() {
        let mut r = RapReceiverState::new();
        r.on_data(0);
        r.on_data(1);
        let ack = r.on_data(4); // 2 and 3 missing
        assert_eq!(ack.highest, 4);
        // bit 0 → seq 3 (missing), bit 1 → seq 2 (missing), bit 2 → seq 1,
        // bit 3 → seq 0.
        assert!(ack.proves_received(0));
        assert!(ack.proves_received(1));
        assert!(!ack.proves_received(2));
        assert!(!ack.proves_received(3));
        assert!(ack.proves_received(4));
    }

    #[test]
    fn missing_first_packet_encoded_as_max() {
        let mut r = RapReceiverState::new();
        let ack = r.on_data(3);
        assert_eq!(ack.cum_seq, u64::MAX);
        assert!(!ack.proves_received(0));
        assert!(ack.proves_received(3));
    }

    #[test]
    fn duplicates_counted() {
        let mut r = RapReceiverState::new();
        r.on_data(0);
        r.on_data(0);
        r.on_data(1);
        r.on_data(1);
        assert_eq!(r.duplicates(), 2);
        assert_eq!(r.unique_received(), 2);
    }

    #[test]
    fn proves_received_beyond_mask_window_via_cum() {
        let mut r = RapReceiverState::new();
        for seq in 0..200 {
            r.on_data(seq);
        }
        let ack = r.on_data(200);
        // Sequence 10 is far below the mask window but covered by cum.
        assert!(ack.proves_received(10));
    }

    #[test]
    fn far_hole_beyond_mask_not_proven() {
        let mut r = RapReceiverState::new();
        r.on_data(0);
        // Jump far ahead: seq 100. Holes 1..=99; mask covers 36..=99.
        let ack = r.on_data(100);
        assert_eq!(ack.cum_seq, 0);
        assert!(!ack.proves_received(50));
        assert!(ack.proves_received(0));
        assert!(ack.proves_received(100));
    }
}
