//! Deterministic, seed-driven fault injection.
//!
//! Composes with any scenario: a [`FaultInjector`] agent perturbs the
//! world through the engine's runtime link-mutation API ([`Ctx`]) and an
//! on/off cross-traffic source, driving every stochastic choice from its
//! *own* PCG32 stream. The injector's schedule therefore depends only on
//! `(plan, seed)` — never on how much randomness the traffic consumed —
//! so a fault campaign replays bit-exactly, and two plans that differ in
//! one knob keep the rest of their schedules aligned.
//!
//! Five fault families, each optional in a [`FaultPlan`]:
//!
//! * **Link flapping** — the forward bottleneck's bandwidth collapses to a
//!   fraction of nominal for exponentially-distributed outages.
//! * **RTT spikes** — the bottleneck's propagation delay jumps by a fixed
//!   amount for a short window (route flap / layer-2 retransmission
//!   storms).
//! * **Burst loss** — a Gilbert–Elliott process toggles the bottleneck's
//!   random-loss probability between a good and a bad state with
//!   exponential sojourn times (the bursty counterpart of the paper's
//!   near-random Bolot losses).
//! * **ACK-path loss** — constant random loss on the reverse bottleneck,
//!   starving the RAP/QA feedback loop without touching the data path.
//! * **Cross-traffic churn** — an unresponsive CBR source joins and
//!   leaves with exponential on/off sojourns, stealing a fraction of the
//!   bottleneck while present.
//!
//! All sojourns are `-mean·ln(1-u)` draws from the injector's RNG; every
//! transition is counted in [`FaultStats`] and mirrored to `laqa-obs`
//! counters (`faults.*`) when observability is enabled.

use crate::engine::{Agent, Ctx};
use crate::packet::{AgentId, LinkId, Packet, PacketKind, Route};
use crate::rng::SimRng;
use std::any::Any;

/// Link flapping: bandwidth outages on the forward bottleneck.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FlapPlan {
    /// Mean healthy time between outages (seconds, exponential).
    pub mean_up_secs: f64,
    /// Mean outage duration (seconds, exponential).
    pub mean_down_secs: f64,
    /// Bandwidth multiplier while down (`0 < frac < 1`).
    pub down_bw_frac: f64,
}

/// RTT spikes: transient propagation-delay increases on the bottleneck.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SpikePlan {
    /// Mean time between spikes (seconds, exponential).
    pub mean_interval_secs: f64,
    /// Fixed spike duration (seconds).
    pub spike_secs: f64,
    /// Added propagation delay while spiking (seconds).
    pub extra_delay: f64,
}

/// Gilbert–Elliott burst loss on the forward bottleneck.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BurstLossPlan {
    /// Mean good-state sojourn (seconds, exponential).
    pub mean_good_secs: f64,
    /// Mean bad-state sojourn (seconds, exponential).
    pub mean_bad_secs: f64,
    /// Loss probability in the good state (the link's nominal loss rate
    /// is used if it is higher).
    pub loss_good: f64,
    /// Loss probability in the bad state.
    pub loss_bad: f64,
}

/// Constant random loss on the reverse (ACK) bottleneck.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AckLossPlan {
    /// ACK loss probability, applied from the plan's start time on.
    pub loss_rate: f64,
}

/// Cross-traffic churn: a CBR source with exponential on/off sojourns.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ChurnPlan {
    /// Mean absent time (seconds, exponential).
    pub mean_off_secs: f64,
    /// Mean present time (seconds, exponential).
    pub mean_on_secs: f64,
    /// CBR rate while present, as a fraction of the bottleneck bandwidth.
    pub rate_frac: f64,
}

/// A complete fault schedule; every family is optional and independent.
#[derive(Debug, Clone, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FaultPlan {
    /// Time the first fault of any family may fire (seconds) — lets the
    /// scenario ramp up cleanly before the weather turns.
    pub start: f64,
    /// Link flapping (forward bottleneck bandwidth).
    pub flap: Option<FlapPlan>,
    /// RTT spikes (forward bottleneck delay).
    pub spike: Option<SpikePlan>,
    /// Gilbert–Elliott burst loss (forward bottleneck).
    pub burst_loss: Option<BurstLossPlan>,
    /// Constant ACK-path loss (reverse bottleneck).
    pub ack_loss: Option<AckLossPlan>,
    /// CBR cross-traffic churn.
    pub churn: Option<ChurnPlan>,
}

impl FaultPlan {
    /// The empty plan: no faults, no injector, baseline trajectories
    /// untouched.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// True when no fault family is enabled.
    pub fn is_none(&self) -> bool {
        self.flap.is_none()
            && self.spike.is_none()
            && self.burst_loss.is_none()
            && self.ack_loss.is_none()
            && self.churn.is_none()
    }

    /// The full five-family suite, scaled by `intensity ∈ (0, 1]`: higher
    /// intensity means more frequent, longer, and deeper faults.
    /// `intensity <= 0` returns the empty plan; values above 1 clamp.
    pub fn suite(intensity: f64) -> Self {
        if !intensity.is_finite() || intensity <= 0.0 {
            return FaultPlan::none();
        }
        let i = intensity.min(1.0);
        FaultPlan {
            start: 8.0,
            flap: Some(FlapPlan {
                mean_up_secs: 24.0 - 16.0 * i,
                mean_down_secs: 0.25 + i,
                down_bw_frac: 1.0 - 0.7 * i,
            }),
            spike: Some(SpikePlan {
                mean_interval_secs: 20.0 - 12.0 * i,
                spike_secs: 0.2 + 0.6 * i,
                extra_delay: 0.05 + 0.25 * i,
            }),
            burst_loss: Some(BurstLossPlan {
                mean_good_secs: 12.0 - 8.0 * i,
                mean_bad_secs: 0.2 + 0.8 * i,
                loss_good: 0.0,
                loss_bad: 0.1 + 0.4 * i,
            }),
            ack_loss: Some(AckLossPlan {
                loss_rate: 0.1 * i,
            }),
            churn: Some(ChurnPlan {
                mean_off_secs: 10.0 - 6.0 * i,
                mean_on_secs: 1.0 + 3.0 * i,
                rate_frac: 0.2 + 0.3 * i,
            }),
        }
    }
}

/// Transition counters accumulated by a [`FaultInjector`] over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FaultStats {
    /// Bandwidth outages started.
    pub flap_downs: u64,
    /// Total seconds the bottleneck spent degraded.
    pub flap_down_secs: f64,
    /// RTT spikes fired.
    pub rtt_spikes: u64,
    /// Gilbert–Elliott bad-state entries.
    pub loss_bursts: u64,
    /// Churn source joins.
    pub churn_joins: u64,
    /// Churn packets injected.
    pub churn_packets: u64,
}

impl FaultStats {
    /// Total fault transitions of every family (fingerprint input).
    pub fn transitions(&self) -> u64 {
        self.flap_downs + self.rtt_spikes + self.loss_bursts + self.churn_joins
    }
}

/// Where a [`FaultInjector`] plugs into an already-built world.
#[derive(Debug, Clone)]
pub struct FaultWiring {
    /// Forward bottleneck (flap, spike, burst-loss target).
    pub forward: LinkId,
    /// Reverse bottleneck (ACK-loss target).
    pub reverse: LinkId,
    /// Destination agent for churn traffic.
    pub churn_dst: AgentId,
    /// Forward route for churn traffic.
    pub churn_route: Route,
    /// Resolved churn rate (bytes/s while present).
    pub churn_rate: f64,
    /// Churn packet size (bytes).
    pub churn_packet: u32,
    /// Flow id churn packets carry (for per-flow accounting).
    pub churn_flow: u32,
}

// Timer tokens: low 8 bits select the fault family, the high bits carry a
// churn epoch so stale per-packet send timers self-cancel (the engine has
// no timer cancellation — an off transition simply bumps the epoch).
const TOK_FLAP: u64 = 1;
const TOK_SPIKE: u64 = 2;
const TOK_SPIKE_END: u64 = 3;
const TOK_LOSS: u64 = 4;
const TOK_ACK: u64 = 5;
const TOK_CHURN: u64 = 6;
const TOK_CHURN_SEND: u64 = 7;
const TOK_KIND_MASK: u64 = 0xff;

/// Agent that executes a [`FaultPlan`] against a live world.
pub struct FaultInjector {
    plan: FaultPlan,
    wiring: FaultWiring,
    rng: SimRng,
    // Nominal link parameters, captured at start so restores are exact.
    nominal_bw: f64,
    nominal_delay: f64,
    nominal_loss: f64,
    flap_down: bool,
    down_since: f64,
    loss_bad: bool,
    churn_on: bool,
    churn_epoch: u64,
    /// Transition counters (read out after the run).
    pub stats: FaultStats,
}

impl FaultInjector {
    /// New injector for `plan`, randomized by a stream derived from
    /// `seed` (decorrelated from the world's own RNG so the fault
    /// schedule is a pure function of the seed, not of traffic).
    pub fn new(plan: FaultPlan, seed: u64, wiring: FaultWiring) -> Self {
        for mean in [
            plan.flap.map(|f| f.mean_up_secs),
            plan.flap.map(|f| f.mean_down_secs),
            plan.spike.map(|s| s.mean_interval_secs),
            plan.burst_loss.map(|b| b.mean_good_secs),
            plan.burst_loss.map(|b| b.mean_bad_secs),
            plan.churn.map(|c| c.mean_off_secs),
            plan.churn.map(|c| c.mean_on_secs),
        ]
        .into_iter()
        .flatten()
        {
            assert!(
                mean.is_finite() && mean > 0.0,
                "fault sojourn means must be finite and positive, got {mean}"
            );
        }
        if let Some(f) = plan.flap {
            assert!(
                f.down_bw_frac > 0.0 && f.down_bw_frac < 1.0,
                "down_bw_frac must be in (0, 1), got {}",
                f.down_bw_frac
            );
        }
        FaultInjector {
            plan,
            wiring,
            // Salted so the injector's stream never collides with the
            // world RNG, which is seeded from the raw scenario seed.
            rng: SimRng::seed_from_u64(seed ^ 0xFA17_5EED_0000_0000),
            nominal_bw: 0.0,
            nominal_delay: 0.0,
            nominal_loss: 0.0,
            flap_down: false,
            down_since: 0.0,
            loss_bad: false,
            churn_on: false,
            churn_epoch: 0,
            stats: FaultStats::default(),
        }
    }

    /// Exponential sojourn with the given mean.
    fn exp(&mut self, mean: f64) -> f64 {
        let u = self.rng.next_f64();
        -mean * (1.0 - u).ln()
    }

    fn churn_interval(&self) -> f64 {
        self.wiring.churn_packet as f64 / self.wiring.churn_rate.max(1.0)
    }

    fn on_flap(&mut self, ctx: &mut Ctx) {
        let flap = self.plan.flap.expect("flap timer without plan");
        if self.flap_down {
            self.flap_down = false;
            self.stats.flap_down_secs += ctx.now - self.down_since;
            ctx.set_link_bandwidth(self.wiring.forward, self.nominal_bw);
            let dt = self.exp(flap.mean_up_secs);
            ctx.set_timer_after(dt, TOK_FLAP);
        } else {
            self.flap_down = true;
            self.down_since = ctx.now;
            self.stats.flap_downs += 1;
            laqa_obs::counter!("faults.flap_down").inc();
            ctx.set_link_bandwidth(self.wiring.forward, self.nominal_bw * flap.down_bw_frac);
            let dt = self.exp(flap.mean_down_secs);
            ctx.set_timer_after(dt, TOK_FLAP);
        }
    }

    fn on_spike(&mut self, ctx: &mut Ctx) {
        let spike = self.plan.spike.expect("spike timer without plan");
        self.stats.rtt_spikes += 1;
        laqa_obs::counter!("faults.rtt_spike").inc();
        ctx.set_link_delay(self.wiring.forward, self.nominal_delay + spike.extra_delay);
        ctx.set_timer_after(spike.spike_secs, TOK_SPIKE_END);
    }

    fn on_spike_end(&mut self, ctx: &mut Ctx) {
        let spike = self.plan.spike.expect("spike timer without plan");
        ctx.set_link_delay(self.wiring.forward, self.nominal_delay);
        let dt = self.exp(spike.mean_interval_secs);
        ctx.set_timer_after(dt, TOK_SPIKE);
    }

    fn on_loss(&mut self, ctx: &mut Ctx) {
        let ge = self.plan.burst_loss.expect("loss timer without plan");
        if self.loss_bad {
            self.loss_bad = false;
            ctx.set_link_loss_rate(self.wiring.forward, self.nominal_loss.max(ge.loss_good));
            let dt = self.exp(ge.mean_good_secs);
            ctx.set_timer_after(dt, TOK_LOSS);
        } else {
            self.loss_bad = true;
            self.stats.loss_bursts += 1;
            laqa_obs::counter!("faults.loss_burst").inc();
            ctx.set_link_loss_rate(self.wiring.forward, ge.loss_bad);
            let dt = self.exp(ge.mean_bad_secs);
            ctx.set_timer_after(dt, TOK_LOSS);
        }
    }

    fn on_churn(&mut self, ctx: &mut Ctx) {
        let churn = self.plan.churn.expect("churn timer without plan");
        self.churn_epoch += 1;
        if self.churn_on {
            self.churn_on = false;
            let dt = self.exp(churn.mean_off_secs);
            ctx.set_timer_after(dt, TOK_CHURN);
        } else {
            self.churn_on = true;
            self.stats.churn_joins += 1;
            laqa_obs::counter!("faults.churn_join").inc();
            let send_tok = TOK_CHURN_SEND | (self.churn_epoch << 8);
            ctx.set_timer_after(0.0, send_tok);
            let dt = self.exp(churn.mean_on_secs);
            ctx.set_timer_after(dt, TOK_CHURN);
        }
    }

    fn on_churn_send(&mut self, ctx: &mut Ctx, epoch: u64) {
        if !self.churn_on || epoch != self.churn_epoch {
            return; // stale timer from a previous on-period
        }
        let uid = ctx.alloc_uid();
        ctx.send(Packet {
            uid,
            flow: self.wiring.churn_flow,
            size: self.wiring.churn_packet,
            kind: PacketKind::Cbr,
            dst: self.wiring.churn_dst,
            route: self.wiring.churn_route.clone(),
            hop: 0,
            sent_at: ctx.now,
        });
        self.stats.churn_packets += 1;
        ctx.set_timer_after(self.churn_interval(), TOK_CHURN_SEND | (epoch << 8));
    }
}

impl Agent for FaultInjector {
    fn start(&mut self, ctx: &mut Ctx) {
        let fwd = ctx.link_config(self.wiring.forward);
        self.nominal_bw = fwd.bandwidth;
        self.nominal_delay = fwd.delay;
        self.nominal_loss = fwd.loss_rate;
        let start = self.plan.start.max(0.0);
        // Each family draws its first firing time up front, in a fixed
        // order, so adding or removing one family never shifts another's
        // schedule within the same seed.
        if let Some(f) = self.plan.flap {
            let dt = self.exp(f.mean_up_secs);
            ctx.set_timer_at(start + dt, TOK_FLAP);
        }
        if let Some(s) = self.plan.spike {
            let dt = self.exp(s.mean_interval_secs);
            ctx.set_timer_at(start + dt, TOK_SPIKE);
        }
        if let Some(g) = self.plan.burst_loss {
            let dt = self.exp(g.mean_good_secs);
            ctx.set_timer_at(start + dt, TOK_LOSS);
        }
        if self.plan.ack_loss.is_some() {
            ctx.set_timer_at(start, TOK_ACK);
        }
        if let Some(c) = self.plan.churn {
            let dt = self.exp(c.mean_off_secs);
            ctx.set_timer_at(start + dt, TOK_CHURN);
        }
    }

    fn on_packet(&mut self, _ctx: &mut Ctx, _pkt: Packet) {}

    fn on_timer(&mut self, ctx: &mut Ctx, token: u64) {
        match token & TOK_KIND_MASK {
            TOK_FLAP => self.on_flap(ctx),
            TOK_SPIKE => self.on_spike(ctx),
            TOK_SPIKE_END => self.on_spike_end(ctx),
            TOK_LOSS => self.on_loss(ctx),
            TOK_ACK => {
                let p = self.plan.ack_loss.expect("ack timer without plan");
                let nominal = ctx.link_config(self.wiring.reverse).loss_rate;
                ctx.set_link_loss_rate(self.wiring.reverse, nominal.max(p.loss_rate));
            }
            TOK_CHURN => self.on_churn(ctx),
            TOK_CHURN_SEND => self.on_churn_send(ctx, token >> 8),
            other => unreachable!("unknown fault timer token {other}"),
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agents::cbr::CountingSink;
    use crate::engine::World;
    use crate::link::LinkConfig;

    fn tiny_world(plan: FaultPlan, seed: u64) -> (World, LinkId, LinkId, AgentId, AgentId) {
        let mut w = World::new(seed);
        let fwd = w.add_link(LinkConfig {
            bandwidth: 100_000.0,
            delay: 0.01,
            queue_packets: 50,
            ..LinkConfig::default()
        });
        let rev = w.add_link(LinkConfig::uncongested());
        let sink = w.add_agent(Box::new(CountingSink::default()));
        let inj = w.add_agent(Box::new(FaultInjector::new(
            plan,
            seed,
            FaultWiring {
                forward: fwd,
                reverse: rev,
                churn_dst: sink,
                churn_route: vec![fwd].into(),
                churn_rate: 25_000.0,
                churn_packet: 250,
                churn_flow: 998,
            },
        )));
        (w, fwd, rev, sink, inj)
    }

    #[test]
    fn suite_zero_is_empty_and_scales_with_intensity() {
        assert!(FaultPlan::suite(0.0).is_none());
        assert!(FaultPlan::suite(-1.0).is_none());
        assert!(FaultPlan::none().is_none());
        let mild = FaultPlan::suite(0.25);
        let severe = FaultPlan::suite(1.0);
        assert!(!mild.is_none() && !severe.is_none());
        let (m, s) = (mild.burst_loss.unwrap(), severe.burst_loss.unwrap());
        assert!(s.loss_bad > m.loss_bad);
        assert!(s.mean_good_secs < m.mean_good_secs);
        let clamped = FaultPlan::suite(7.0);
        assert_eq!(clamped, severe, "intensity clamps at 1");
    }

    #[test]
    fn flap_restores_nominal_bandwidth_between_outages() {
        let plan = FaultPlan {
            start: 0.0,
            flap: Some(FlapPlan {
                mean_up_secs: 1.0,
                mean_down_secs: 0.2,
                down_bw_frac: 0.25,
            }),
            ..FaultPlan::none()
        };
        let (mut w, fwd, _, _, inj) = tiny_world(plan, 7);
        w.run_until(60.0);
        let stats = w.agent::<FaultInjector>(inj).unwrap().stats;
        assert!(stats.flap_downs >= 10, "got {} outages", stats.flap_downs);
        assert!(stats.flap_down_secs > 0.0);
        let bw = w.link_config(fwd).bandwidth;
        assert!(
            bw == 100_000.0 || bw == 25_000.0,
            "bandwidth is either nominal or degraded, got {bw}"
        );
    }

    #[test]
    fn burst_loss_toggles_between_states() {
        let plan = FaultPlan {
            start: 0.0,
            burst_loss: Some(BurstLossPlan {
                mean_good_secs: 0.5,
                mean_bad_secs: 0.2,
                loss_good: 0.0,
                loss_bad: 0.4,
            }),
            ..FaultPlan::none()
        };
        let (mut w, fwd, _, _, inj) = tiny_world(plan, 11);
        w.run_until(30.0);
        let stats = w.agent::<FaultInjector>(inj).unwrap().stats;
        assert!(stats.loss_bursts >= 10, "got {} bursts", stats.loss_bursts);
        let loss = w.link_config(fwd).loss_rate;
        assert!(loss == 0.0 || loss == 0.4, "loss is good or bad, got {loss}");
    }

    #[test]
    fn ack_loss_applies_from_start_time() {
        let plan = FaultPlan {
            start: 2.0,
            ack_loss: Some(AckLossPlan { loss_rate: 0.15 }),
            ..FaultPlan::none()
        };
        let (mut w, _, rev, _, _) = tiny_world(plan, 3);
        w.run_until(1.0);
        assert_eq!(w.link_config(rev).loss_rate, 0.0, "not yet started");
        w.run_until(3.0);
        assert_eq!(w.link_config(rev).loss_rate, 0.15);
    }

    #[test]
    fn churn_injects_traffic_only_while_on() {
        let plan = FaultPlan {
            start: 0.0,
            churn: Some(ChurnPlan {
                mean_off_secs: 0.5,
                mean_on_secs: 1.0,
                rate_frac: 0.25,
            }),
            ..FaultPlan::none()
        };
        let (mut w, _, _, sink, inj) = tiny_world(plan, 5);
        w.run_until(30.0);
        let stats = w.agent::<FaultInjector>(inj).unwrap().stats;
        assert!(stats.churn_joins >= 5, "got {} joins", stats.churn_joins);
        let got = w.agent::<CountingSink>(sink).unwrap().packets;
        // Sent = delivered + queue-dropped (+ at most a couple still in
        // flight when the run ends).
        let accounted = got + w.link_stats(0).dropped;
        assert!(
            stats.churn_packets >= accounted && stats.churn_packets <= accounted + 2,
            "sent {} vs accounted {accounted}",
            stats.churn_packets
        );
        assert!(got > 0, "churn traffic must reach the sink");
        // On ~2/3 duty cycle at 100 pkt/s the full-on count would be 3000;
        // the off periods must show up as a materially smaller total.
        assert!(
            (500..2900).contains(&(got as i64)),
            "duty cycle bounds violated: {got} packets"
        );
    }

    #[test]
    fn injector_schedule_is_seed_replayable() {
        let run = |seed| {
            let (mut w, _, _, _, inj) = tiny_world(FaultPlan::suite(1.0), seed);
            w.run_until(40.0);
            w.agent::<FaultInjector>(inj).unwrap().stats
        };
        assert_eq!(run(42), run(42), "same seed, same schedule");
        assert_ne!(run(42), run(43), "different seed, different schedule");
    }

    #[test]
    fn spikes_raise_and_restore_delay() {
        let plan = FaultPlan {
            start: 0.0,
            spike: Some(SpikePlan {
                mean_interval_secs: 0.5,
                spike_secs: 0.1,
                extra_delay: 0.2,
            }),
            ..FaultPlan::none()
        };
        let (mut w, fwd, _, _, inj) = tiny_world(plan, 9);
        w.run_until(30.0);
        let stats = w.agent::<FaultInjector>(inj).unwrap().stats;
        assert!(stats.rtt_spikes >= 10, "got {} spikes", stats.rtt_spikes);
        let d = w.link_config(fwd).delay;
        assert!(
            (d - 0.01).abs() < 1e-12 || (d - 0.21).abs() < 1e-12,
            "delay is nominal or spiked, got {d}"
        );
    }
}
