//! # laqa-apps
//!
//! Host crate for the workspace's top-level `examples/` (runnable binaries
//! exercising the public API) and `tests/` (integration tests spanning
//! crates, including the golden-trace regression suite). It has no
//! library code of its own — see the examples:
//!
//! * `quickstart` — drive a [`laqa_core::QaController`] by hand;
//! * `congested_backbone` — the paper's T1 workload in the simulator;
//! * `smoothing_tradeoff` — sweep the smoothing factor `K_max`;
//! * `nonlinear_layers` — quality adaptation over non-uniform layer rates;
//! * `live_session` — a playback session against the simulated network.
//!
//! Run one with `cargo run -p laqa-apps --example quickstart`. (The
//! tokio/UDP `streaming_session` example lives in the network-facing
//! `laqa-net` crate, which builds separately from the hermetic default
//! workspace — see DESIGN.md, "Hermetic offline builds".)

#![warn(missing_docs)]
#![deny(unsafe_code)]
