//! Steady-state allocation guard for the warm-world campaign path.
//!
//! PR 4 pinned the in-session allocator win (266k → 29k allocs per run);
//! this pins the cross-session one: once a worker's [`WorldPool`] is warm,
//! the next session must run within a small fixed allocation budget —
//! engine storage (scheduler slab, link ring buffers, agents vector) is
//! recycled and geometry derivations hit the shared memo, so only agent
//! construction and result extraction still allocate.
//!
//! The geometry memo uses two-touch admission (see
//! `laqa_core::GeometryCache`): a sequence is admitted on its *second*
//! miss, so with a repeated spec the first session registers keys, the
//! second pays the admissions, and the third is the steady state this
//! test measures. Admission stores a flattened `CachedSeq` (two buffers
//! per key) rather than a `StateSequence` clone (one `Vec` per state),
//! which is what keeps the warm campaign path at or below cold-path
//! allocation parity — the BENCH_campaign.json anomaly PR 10 fixed and
//! the parity assertion below gates.
//!
//! Lives in `crates/bench/tests` because the laqa crates are
//! `deny(unsafe_code)` and the counting `#[global_allocator]` is the one
//! unavoidable unsafe surface. Single `#[test]` on purpose: the counter is
//! process-global, and sibling tests running on other threads would bleed
//! into the measurement.

use laqa_sim::{
    run_campaign_opts, run_session_pooled, run_session_with, CampaignOptions, CampaignSpec,
    SchedulerKind, SessionSpec, TestKind, Transport, WorldPool,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocations allowed for the third (steady-state warm) session.
/// Measured: ~1 880 at 8 s (agent construction, trace growth, result
/// extraction clones), against ~5 600 for the cold first session. The
/// budget leaves slack for allocator-library drift without letting a
/// cold-start regression sneak past.
const WARM_SESSION_ALLOC_BUDGET: u64 = 2_200;

/// Amortized allocations per session for a warm single-thread mega
/// campaign over *distinct* seeds — cold start and admissions included,
/// which is exactly the regime where the pre-two-touch memo paid
/// ~4 800 allocs/session. Measured: ~2 120 allocs/session over 8 seeds
/// at 8 s.
const MEGA_SESSION_ALLOC_BUDGET: u64 = 2_500;

#[test]
fn warm_and_mega_sessions_stay_under_alloc_budgets() {
    let spec = SessionSpec {
        test: TestKind::T1,
        k_max: 2,
        seed: 7,
        // Past qa_start (5 s): the QA controller must actually tick, or
        // the geometry-memo assertions below would pass vacuously.
        duration: 8.0,
        fault_intensity: None,
        transport: Transport::Rap,
        trace: None,
    };
    let mut pool = WorldPool::new();

    // Session 1: cold — pays world construction, registers memo keys.
    let first = run_session_pooled(&spec, SchedulerKind::Wheel, &mut pool);
    assert!(pool.is_warm(), "pool must bank the retired world");

    // Session 2: warm but pays the memo's two-touch admission clones.
    let second = run_session_pooled(&spec, SchedulerKind::Wheel, &mut pool);

    // Session 3: steady state — the guarded measurement.
    let a0 = ALLOCS.load(Ordering::Relaxed);
    let third = run_session_pooled(&spec, SchedulerKind::Wheel, &mut pool);
    let warm_allocs = ALLOCS.load(Ordering::Relaxed) - a0;

    assert_eq!(
        first.trace_hash, second.trace_hash,
        "same spec through the same pool must replay bit-identically"
    );
    assert_eq!(first.trace_hash, third.trace_hash);
    let standalone = run_session_with(&spec, SchedulerKind::Wheel);
    assert_eq!(
        standalone.trace_hash, third.trace_hash,
        "pooled session must match a cold standalone run"
    );
    let (hits, misses) = pool.geometry_stats();
    assert!(hits > 0, "repeated spec must hit the geometry memo");
    assert!(misses > 0, "first session must have populated the memo");

    assert!(
        warm_allocs <= WARM_SESSION_ALLOC_BUDGET,
        "steady-state warm session allocated {warm_allocs} times \
         (budget {WARM_SESSION_ALLOC_BUDGET}); the warm-world reuse path regressed"
    );

    // Mega executor: one engine, one warm pool, 8 distinct seeds in one
    // chunk. Distinct seeds are the anti-memo case (most operating points
    // never repeat); the amortized bound holds because two-touch admission
    // keeps one-shot sequences out of the memo.
    let grid = CampaignSpec::grid(
        &[TestKind::T1],
        &[2],
        &[1, 2, 3, 4, 5, 6, 7, 8],
        8.0,
    );
    let m0 = ALLOCS.load(Ordering::Relaxed);
    let mega = run_campaign_opts(&grid, CampaignOptions::new(1).mega().mega_chunk(8));
    let mega_allocs_per_session =
        (ALLOCS.load(Ordering::Relaxed) - m0) / grid.len() as u64;
    let per_cell = run_campaign_opts(&grid, CampaignOptions::new(1));
    assert_eq!(
        mega.fingerprint(),
        per_cell.fingerprint(),
        "mega executor must replay the per-cell campaign bit-identically"
    );
    assert!(
        mega_allocs_per_session <= MEGA_SESSION_ALLOC_BUDGET,
        "mega campaign allocated {mega_allocs_per_session} times per session \
         (budget {MEGA_SESSION_ALLOC_BUDGET}); the mega/warm reuse path regressed"
    );

    // Bench-path parity: the exact comparison BENCH_campaign.json makes.
    // A warm per-cell campaign (pooled worlds, shared memo — the default)
    // must not allocate more per session than the same grid run cold.
    // Before PR 10 flattened memo admissions this was inverted (warm
    // ~2 500 vs cold ~2 170 per session in the bench cells); the counts
    // are deterministic, so an exact <= holds and gates the anomaly.
    let parity = CampaignSpec::grid(&[TestKind::T1, TestKind::T2], &[2, 4], &[7, 21], 8.0);
    let w0 = ALLOCS.load(Ordering::Relaxed);
    let warm_campaign = run_campaign_opts(&parity, CampaignOptions::new(1));
    let warm_per_session = (ALLOCS.load(Ordering::Relaxed) - w0) / parity.len() as u64;
    let c0 = ALLOCS.load(Ordering::Relaxed);
    let cold_campaign = run_campaign_opts(&parity, CampaignOptions::new(1).cold());
    let cold_per_session = (ALLOCS.load(Ordering::Relaxed) - c0) / parity.len() as u64;
    assert_eq!(warm_campaign.fingerprint(), cold_campaign.fingerprint());
    eprintln!(
        "warm_alloc: steady={warm_allocs} mega/session={mega_allocs_per_session} \
         campaign warm/session={warm_per_session} cold/session={cold_per_session}"
    );
    assert!(
        warm_per_session <= cold_per_session,
        "warm campaign cells allocated {warm_per_session} times per session vs \
         {cold_per_session} cold; the warm bench path lost alloc parity again"
    );
}
