//! `campaign_bench` — warm-world campaign executor baseline.
//!
//! Sweeps the campaign smoke grid across thread counts on cold vs. warm
//! worlds under both scheduler kinds, cross-checks that every one of the
//! `{cold, warm} × {threads} × {heap, wheel}` fingerprints is bit-identical
//! (exiting non-zero on any divergence — warm pools and the geometry memo
//! must be invisible to the simulation), probes steady-state allocations
//! for a warm pool's second session, and writes `BENCH_campaign.json` at
//! the repo root so campaign throughput is tracked in-tree.
//!
//! ```text
//! campaign_bench                   # full baseline (3 reps, best-of)
//! campaign_bench --smoke           # 1 rep, short duration (CI wiring)
//! campaign_bench --mega            # add megasession-executor cells and
//!                                  # the 64-session mega-vs-per-cell probe
//! campaign_bench --profile         # per-dispatch-site time breakdown from
//!                                  # the instrumented rep (no extra deps)
//! options: --threads LIST (default 1,2,8,16)  --reps N  --duration S
//!          --out FILE  --check FILE (>20% events/sec regression gate;
//!          with --mega also gates the mega executor's events/sec and
//!          the 64-session mega-vs-per-cell speedup ratio)
//! ```

use laqa_bench::cli::Args;
use laqa_sim::{
    run_campaign_fold, run_campaign_opts, run_session_pooled, CampaignOptions, CampaignSpec,
    SchedulerKind, SessionSpec, TestKind, Transport, WorldPool,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// System allocator wrapped with allocation counters: the whole point of
/// the warm-world path is the allocations it does *not* make, so the
/// report pins allocs/session per mode as a hard number.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

// laqa crates are all `deny(unsafe_code)`; the one unavoidable unsafe
// surface (the global-allocator hook) lives here in the bench binary.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

type AnyError = Box<dyn std::error::Error>;

/// One measured cell: a (world mode, scheduler, thread count) triple.
struct Cell {
    mode: &'static str,
    /// QA-flow congestion controller ("rap" for the whole gated grid;
    /// other labels only appear in the interop probe's cells).
    transport: &'static str,
    sched: SchedulerKind,
    threads: usize,
    /// Workers the executor actually spawned: `threads` clamped to the
    /// session count and the host's available parallelism.
    threads_effective: usize,
    fingerprint: u64,
    events: u64,
    /// Best-of-reps worker wall time (merge excluded; seconds).
    wall_secs: f64,
    merge_secs: f64,
    allocations: u64,
    sessions: usize,
}

impl Cell {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall_secs.max(1e-9)
    }
    fn allocs_per_session(&self) -> u64 {
        self.allocations / self.sessions.max(1) as u64
    }
}

fn measure_rep(spec: &CampaignSpec, opts: CampaignOptions, mode: &'static str) -> Cell {
    let a0 = ALLOCS.load(Ordering::Relaxed);
    let result = run_campaign_opts(spec, opts);
    Cell {
        mode,
        transport: "rap",
        sched: opts.sched,
        threads: opts.threads,
        threads_effective: result.threads,
        fingerprint: result.fingerprint(),
        events: result.sessions.iter().map(|s| s.events_processed).sum(),
        wall_secs: result.wall_secs,
        merge_secs: result.merge_secs,
        allocations: ALLOCS.load(Ordering::Relaxed) - a0,
        sessions: result.sessions.len(),
    }
}

/// Best-of-`reps` for one configuration, with a discarded warmup rep and a
/// rep-to-rep fingerprint assert.
fn measure(spec: &CampaignSpec, opts: CampaignOptions, mode: &'static str, reps: usize) -> Cell {
    let _ = measure_rep(spec, opts, mode);
    let mut best: Option<Cell> = None;
    for _ in 0..reps.max(1) {
        let cell = measure_rep(spec, opts, mode);
        match &best {
            Some(prev) => {
                assert_eq!(
                    prev.fingerprint, cell.fingerprint,
                    "{mode}/{}/t{}: rep-to-rep divergence",
                    opts.sched.label(),
                    opts.threads
                );
                if cell.wall_secs < prev.wall_secs {
                    best = Some(cell);
                }
            }
            None => best = Some(cell),
        }
    }
    best.expect("reps >= 1")
}

/// One extra instrumented rep with laqa-obs enabled, run outside the
/// timed best-of reps: proves the instrumentation is inert (fingerprint
/// unchanged vs. the timed cells) and harvests the latency histograms the
/// hot paths feed — scheduler dispatch time, timer-wheel slack,
/// per-session campaign wall time, and the mega executor's batch shape.
fn quantile_probe(
    spec: &CampaignSpec,
    threads: usize,
    mega: bool,
    fp0: u64,
) -> Result<laqa_obs::Snapshot, AnyError> {
    laqa_obs::reset();
    laqa_obs::set_enabled(true);
    let warm = run_campaign_opts(spec, CampaignOptions::new(threads));
    if warm.fingerprint() != fp0 {
        return Err(format!(
            "OBS NOT INERT: instrumented per-cell fingerprint {:016x} != {fp0:016x}",
            warm.fingerprint()
        )
        .into());
    }
    if mega {
        let mg = run_campaign_opts(spec, CampaignOptions::new(threads).mega());
        if mg.fingerprint() != fp0 {
            return Err(format!(
                "OBS NOT INERT: instrumented mega fingerprint {:016x} != {fp0:016x}",
                mg.fingerprint()
            )
            .into());
        }
    }
    laqa_obs::set_enabled(false);
    let snap = laqa_obs::snapshot();
    laqa_obs::reset();
    Ok(snap)
}

/// `--profile`: per-dispatch-site time breakdown from the instrumented
/// rep's snapshot — counts, total and mean wall time per site, plus the
/// timer wheel's insert-path split. Zero external dependencies: every
/// number is already in the laqa-obs registries.
fn print_profile(snap: &laqa_obs::Snapshot) {
    println!(
        "{:<26} {:>12} {:>12} {:>10} {:>7}",
        "dispatch site", "count", "total (ms)", "mean (ns)", "share"
    );
    // Timed sites, one per dispatch path: per-cell engine event dispatch,
    // mega per-session event dispatch. Spans cover the enclosing scopes.
    let hist_sites = ["sched.dispatch_ns", "mega.session_event_ns"];
    let hist_total: f64 = hist_sites
        .iter()
        .filter_map(|n| snap.histogram(n))
        .map(|h| h.sum)
        .sum();
    for name in hist_sites {
        let Some(h) = snap.histogram(name) else {
            continue;
        };
        println!(
            "{:<26} {:>12} {:>12.3} {:>10.1} {:>6.1}%",
            name,
            h.count,
            h.sum / 1e6,
            h.mean().unwrap_or(0.0),
            100.0 * h.sum / hist_total.max(1e-9)
        );
    }
    for (name, s) in &snap.spans {
        if s.count == 0 {
            continue;
        }
        println!(
            "{:<26} {:>12} {:>12.3} {:>10.1} {:>7}",
            name,
            s.count,
            s.total_ns as f64 / 1e6,
            s.mean_ns().unwrap_or(0.0),
            "-"
        );
    }
    // Wheel insert-path split: which of the three schedule() arms the
    // workload actually exercises (active-tick merge / slot window /
    // overflow tree).
    let paths = [
        "sched.wheel_insert_active",
        "sched.wheel_insert_window",
        "sched.wheel_insert_overflow",
    ];
    let inserts: u64 = paths
        .iter()
        .map(|n| snap.counter(n).unwrap_or(0))
        .sum();
    for name in paths {
        let n = snap.counter(name).unwrap_or(0);
        println!(
            "{:<26} {:>12} {:>12} {:>10} {:>6.1}%",
            name,
            n,
            "-",
            "-",
            100.0 * n as f64 / inserts.max(1) as f64
        );
    }
    // Geometry-memo effectiveness: hits avoid a full state-path rebuild;
    // admissions are the clones the warm path pays for them.
    let geo = [
        "qa.geometry_cache.hits",
        "qa.geometry_cache.misses",
        "qa.geometry_cache.admissions",
    ];
    let lookups: u64 = geo[..2]
        .iter()
        .map(|n| snap.counter(n).unwrap_or(0))
        .sum();
    for name in geo {
        let n = snap.counter(name).unwrap_or(0);
        println!(
            "{:<26} {:>12} {:>12} {:>10} {:>6.1}%",
            name,
            n,
            "-",
            "-",
            100.0 * n as f64 / lookups.max(1) as f64
        );
    }
}

/// Look up one quantile of a named histogram from the probe's snapshot.
fn probe_quantile(hists: &[laqa_obs::HistogramSnapshot], name: &str, q: f64) -> Option<f64> {
    hists.iter().find(|h| h.name == name)?.quantile(q)
}

/// Steady-state probe: allocations charged to a warm pool's successive
/// sessions. The first pays world construction; the second still pays the
/// geometry memo's two-touch admission clones (every key now on its
/// second miss); from the third on, engine storage is recycled and every
/// repeated derivation hits the memo. The third session is the number
/// `crates/bench/tests/warm_alloc.rs` budgets.
fn steady_state_allocs(duration: f64) -> (u64, u64, u64) {
    let spec = SessionSpec {
        test: TestKind::T1,
        k_max: 2,
        seed: 7,
        duration,
        fault_intensity: None,
        transport: Transport::Rap,
        trace: None,
    };
    let mut pool = WorldPool::new();
    let mut session = || {
        let a0 = ALLOCS.load(Ordering::Relaxed);
        let _ = run_session_pooled(&spec, SchedulerKind::Wheel, &mut pool);
        ALLOCS.load(Ordering::Relaxed) - a0
    };
    let first = session();
    let second = session();
    let third = session();
    (first, second, third)
}

/// QA × transport interop probe: a small T1 grid run once per transport
/// on the warm executor, replayed on a second thread count to prove each
/// controller's trace is deterministic. Reported in its own JSON block,
/// deliberately OUTSIDE the executor fingerprint gate — different
/// congestion controllers legitimately produce different traces, so
/// their fingerprints must never be folded into the `fp0` assertion.
fn interop_probe(duration: f64, reps: usize) -> Result<Vec<Cell>, AnyError> {
    let mut out = Vec::new();
    for &t in Transport::ALL.iter() {
        let mut spec = CampaignSpec::grid(&[TestKind::T1], &[2], &[7, 21], duration);
        for s in &mut spec.sessions {
            s.transport = t;
        }
        eprintln!("measuring interop/{} ({} sessions)...", t.label(), spec.len());
        let mut cell = measure(&spec, CampaignOptions::new(1), "interop", reps);
        cell.transport = t.label();
        let replay = measure_rep(&spec, CampaignOptions::new(2), "interop");
        if replay.fingerprint != cell.fingerprint {
            return Err(format!(
                "INTEROP DIVERGENCE: {} fingerprint {:016x} at 2 threads != {:016x} at 1",
                t.label(),
                replay.fingerprint,
                cell.fingerprint
            )
            .into());
        }
        out.push(cell);
    }
    Ok(out)
}

/// Hostile-network probe: the smoke grid re-run once per trace family
/// (LTE swings, bufferbloat, diurnal ramp, bonded two-path) on the warm
/// executor, replayed at 2 threads and on the mega executor to prove
/// trace-driven cells stay deterministic. Like the interop block this is
/// deliberately OUTSIDE the `fp0` executor gate — a schedule-driven
/// bottleneck legitimately produces a different trajectory per family, so
/// these fingerprints must never be folded into the executor assertion.
/// (`Cell::transport` carries the trace label here.)
fn hostile_probe(duration: f64, reps: usize) -> Result<Vec<Cell>, AnyError> {
    let mut out = Vec::new();
    for &t in laqa_sim::TraceKind::ALL.iter() {
        let mut spec = CampaignSpec::grid(&[TestKind::T1], &[2], &[7, 21], duration);
        for s in &mut spec.sessions {
            s.trace = Some(t);
        }
        eprintln!("measuring hostile/{} ({} sessions)...", t.label(), spec.len());
        let mut cell = measure(&spec, CampaignOptions::new(1), "hostile", reps);
        cell.transport = t.label();
        let replay = measure_rep(&spec, CampaignOptions::new(2), "hostile");
        let mega = measure_rep(&spec, CampaignOptions::new(1).mega(), "hostile");
        if replay.fingerprint != cell.fingerprint || mega.fingerprint != cell.fingerprint {
            return Err(format!(
                "HOSTILE DIVERGENCE: {} fingerprints {:016x} (2 threads) / {:016x} (mega) \
                 != {:016x} (1 thread)",
                t.label(),
                replay.fingerprint,
                mega.fingerprint,
                cell.fingerprint
            )
            .into());
        }
        out.push(cell);
    }
    Ok(out)
}

fn default_out() -> std::path::PathBuf {
    // crates/bench -> repo root, independent of cargo's working directory.
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_campaign.json")
}

/// Pull `"key": <number>` out of a baseline JSON by string scan (the
/// bench JSON is handwritten, flat, and trusted — no parser needed).
fn scan_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn run(args: &Args) -> Result<(), AnyError> {
    let smoke = args.flag("smoke");
    let mega = args.flag("mega");
    let reps: usize = args.get("reps", if smoke { 1 } else { 3 })?;
    // Even the smoke duration stays past qa_start (5 s) so the QA
    // controller — and with it the geometry memo — is actually exercised.
    let duration: f64 = args.get("duration", if smoke { 6.0 } else { 8.0 })?;
    let thread_counts: Vec<usize> = args.get_list("threads", &[1, 2, 8, 16])?;

    // 16 sessions (T1 × k{2,4} × 8 seeds) so a 16-thread run actually gets
    // one session per worker instead of clamping down.
    let seeds: [u64; 8] = [7, 21, 35, 49, 63, 77, 91, 105];
    let spec = CampaignSpec::grid(&[TestKind::T1], &[2, 4], &seeds, duration);

    let mut cells: Vec<Cell> = Vec::new();
    for &sched in SchedulerKind::ALL.iter() {
        for &threads in &thread_counts {
            let mut modes = vec![
                ("cold", CampaignOptions::new(threads).sched(sched).cold()),
                ("warm", CampaignOptions::new(threads).sched(sched)),
            ];
            if mega {
                modes.push(("mega", CampaignOptions::new(threads).sched(sched).mega()));
            }
            for (mode, opts) in modes {
                eprintln!(
                    "measuring {mode}/{}/t{threads} ({} sessions, {reps} rep(s))...",
                    sched.label(),
                    spec.len()
                );
                cells.push(measure(&spec, opts, mode, reps));
            }
        }
    }

    // Fingerprint gate: every {mode, sched, threads} combination must
    // reproduce the same campaign bit for bit.
    let fp0 = cells[0].fingerprint;
    for c in &cells {
        if c.fingerprint != fp0 {
            return Err(format!(
                "EXECUTOR DIVERGENCE: {}/{}/t{} fingerprint {:016x} != {:016x}",
                c.mode,
                c.sched.label(),
                c.threads,
                c.fingerprint,
                fp0
            )
            .into());
        }
    }

    // The streaming fold must reproduce the full-mode fingerprint too.
    let fold = run_campaign_fold(
        &spec,
        CampaignOptions::new(*thread_counts.iter().max().unwrap_or(&1)),
        0u64,
        |acc, r| *acc += r.events_processed,
    );
    if fold.fingerprint != fp0 {
        return Err(format!(
            "STREAMING DIVERGENCE: fold fingerprint {:016x} != full {:016x}",
            fold.fingerprint, fp0
        )
        .into());
    }

    let (cold_first, warm_second, warm_third) = steady_state_allocs(duration);

    eprintln!("measuring instrumented quantile rep (obs enabled, untimed)...");
    let probe_threads = *thread_counts.iter().max().unwrap_or(&1);
    let probe_snap = quantile_probe(&spec, probe_threads, mega, fp0)?;
    let hists = &probe_snap.histograms;

    // 64-session single-thread probe: the per-cell executor vs one
    // MegaEngine multiplexing the whole grid in a single chunk. Reported
    // as an honest ratio — the per-cell path is already warm-pooled and
    // allocation-free in steady state, so the mega executor's win here is
    // engine-reuse and batching, not a order-of-magnitude miracle.
    let mut mega64: Option<(Cell, Cell, f64)> = None;
    if mega {
        let seeds64: Vec<u64> = (0..16).map(|i| 7 + 14 * i).collect();
        let wide = CampaignSpec::grid(&[TestKind::T1, TestKind::T2], &[2, 4], &seeds64, duration);
        eprintln!(
            "measuring 64-session single-thread probe ({} sessions)...",
            wide.len()
        );
        // Interleave the two executors' reps (A B A B ...) rather than
        // best-of-N each in sequence: on a frequency-throttled container,
        // drift between the two measurement windows can swing the
        // reported ratio by ±10 %, and the ratio is what --check gates.
        // The gated ratio is the MEDIAN of order-cancelled quads: each
        // sample runs A B then B A and takes sqrt(ratio_AB * ratio_BA).
        // The second rep of a pair sits higher on the host's frequency
        // ramp, which multiplies one pair's ratio by some bias b and the
        // flipped pair's by 1/b — the geometric mean cancels it exactly.
        // Sequential best-of (and even one-order interleaving) swung the
        // reported ratio 0.90–1.08x run to run on this container, enough
        // to trip the ±10% --check gate on unchanged code. Best-of cells
        // are still kept for the absolute events/s numbers in the table
        // and JSON.
        fn keep_best(best: &mut Option<Cell>, cell: Cell, what: &str) {
            match best {
                Some(prev) => {
                    assert_eq!(prev.fingerprint, cell.fingerprint, "{what}: rep-to-rep divergence");
                    if cell.wall_secs < prev.wall_secs {
                        *best = Some(cell);
                    }
                }
                None => *best = Some(cell),
            }
        }
        let pc_opts = CampaignOptions::new(1);
        // Default chunking (not one giant chunk): retiring a chunk banks
        // its worlds' storage, so later chunks admit warm — the same
        // salvage reuse the per-cell pool enjoys.
        let mg_opts = CampaignOptions::new(1).mega();
        let _ = measure_rep(&wide, pc_opts, "percell64");
        let _ = measure_rep(&wide, mg_opts, "mega64");
        let (mut pc_best, mut mg_best) = (None, None);
        let mut quad_ratios: Vec<f64> = Vec::new();
        for _ in 0..reps.max(3) {
            let pc_a = measure_rep(&wide, pc_opts, "percell64");
            let mg_a = measure_rep(&wide, mg_opts, "mega64");
            let mg_b = measure_rep(&wide, mg_opts, "mega64");
            let pc_b = measure_rep(&wide, pc_opts, "percell64");
            let r_ab = mg_a.events_per_sec() / pc_a.events_per_sec().max(1e-9);
            let r_ba = mg_b.events_per_sec() / pc_b.events_per_sec().max(1e-9);
            quad_ratios.push((r_ab * r_ba).sqrt());
            keep_best(&mut pc_best, pc_a, "percell64");
            keep_best(&mut pc_best, pc_b, "percell64");
            keep_best(&mut mg_best, mg_a, "mega64");
            keep_best(&mut mg_best, mg_b, "mega64");
        }
        quad_ratios.sort_by(|a, b| a.total_cmp(b));
        let median_ratio = quad_ratios[quad_ratios.len() / 2];
        eprintln!(
            "mega64 quad ratios (sorted): [{}] -> median {median_ratio:.3}",
            quad_ratios.iter().map(|r| format!("{r:.3}")).collect::<Vec<_>>().join(", ")
        );
        let per_cell = pc_best.expect("reps >= 1");
        let mega_wide = mg_best.expect("reps >= 1");
        if per_cell.fingerprint != mega_wide.fingerprint {
            return Err(format!(
                "EXECUTOR DIVERGENCE: 64-session mega fingerprint {:016x} != per-cell {:016x}",
                mega_wide.fingerprint, per_cell.fingerprint
            )
            .into());
        }
        mega64 = Some((per_cell, mega_wide, median_ratio));
    }

    let interop = interop_probe(duration, reps)?;
    let hostile = hostile_probe(duration, reps)?;

    println!(
        "{:<6} {:>6} {:>3} {:>12} {:>10} {:>12} {:>14} {:>10}",
        "mode", "sched", "thr", "events", "wall (s)", "events/s", "allocs/sess", "merge (ms)"
    );
    for c in &cells {
        println!(
            "{:<6} {:>6} {:>3} {:>12} {:>10.3} {:>12.0} {:>14} {:>10.3}",
            c.mode,
            c.sched.label(),
            c.threads,
            c.events,
            c.wall_secs,
            c.events_per_sec(),
            c.allocs_per_session(),
            c.merge_secs * 1e3
        );
    }

    let find = |mode: &str, sched: SchedulerKind, threads: usize| -> Option<&Cell> {
        cells
            .iter()
            .find(|c| c.mode == mode && c.sched == sched && c.threads == threads)
    };
    let base_threads = *thread_counts.first().unwrap_or(&1);
    let warm_vs_cold = match (
        find("warm", SchedulerKind::Wheel, base_threads),
        find("cold", SchedulerKind::Wheel, base_threads),
    ) {
        (Some(w), Some(c)) => w.events_per_sec() / c.events_per_sec().max(1e-9),
        _ => 1.0,
    };
    let agg_8_vs_1 = match (
        find("warm", SchedulerKind::Wheel, 8),
        find("warm", SchedulerKind::Wheel, 1),
    ) {
        (Some(w8), Some(w1)) => w8.events_per_sec() / w1.events_per_sec().max(1e-9),
        _ => 1.0,
    };
    // Overall events/sec over the cold+warm cells only — the number every
    // historical baseline's `--check` gate compares against; mega cells
    // get their own aggregate below so the two gates stay independent.
    let overall: f64 = {
        let base: Vec<&Cell> = cells.iter().filter(|c| c.mode != "mega").collect();
        let events: u64 = base.iter().map(|c| c.events).sum();
        let wall: f64 = base.iter().map(|c| c.wall_secs).sum();
        events as f64 / wall.max(1e-9)
    };
    let mega_overall: Option<f64> = mega.then(|| {
        let m: Vec<&Cell> = cells.iter().filter(|c| c.mode == "mega").collect();
        let events: u64 = m.iter().map(|c| c.events).sum();
        let wall: f64 = m.iter().map(|c| c.wall_secs).sum();
        events as f64 / wall.max(1e-9)
    });
    // Median of the interleaved per-pair ratios, not best-of vs best-of:
    // the two best reps can come from different thermal windows, which
    // is exactly the noise the pairing was built to cancel.
    let mega_vs_percell_64 = mega64.as_ref().map(|(_, _, r)| *r);
    println!(
        "warm/cold @{base_threads} thread(s) (wheel): {warm_vs_cold:.2}x; \
         warm 8-vs-1 threads: {agg_8_vs_1:.2}x; overall {overall:.0} events/s"
    );
    if let (Some(mo), Some(ratio)) = (mega_overall, mega_vs_percell_64) {
        println!(
            "mega executor: overall {mo:.0} events/s; \
             64-session single-thread mega vs per-cell: {ratio:.2}x (quad median)"
        );
    }
    println!(
        "steady-state allocs: first (cold) session {cold_first}, second (warm, memo \
         admission) {warm_second}, third (steady) {warm_third}"
    );
    for c in &interop {
        println!(
            "interop {:>4}: fingerprint {:016x}, {:.0} events/s (deterministic at 1 and 2 threads)",
            c.transport,
            c.fingerprint,
            c.events_per_sec()
        );
    }
    for c in &hostile {
        println!(
            "hostile {:>7}: fingerprint {:016x}, {:.0} events/s \
             (deterministic at 1/2 threads and mega)",
            c.transport,
            c.fingerprint,
            c.events_per_sec()
        );
    }

    // Quantile table from the instrumented rep. Dispatch/horizon/event are
    // nanoseconds, session wall is milliseconds, batch size is events.
    let probe_names = [
        "sched.dispatch_ns",
        "sched.wheel_horizon_ns",
        "campaign.session_wall_ms",
        "mega.session_event_ns",
        "mega.batch_size",
    ];
    println!(
        "{:<26} {:>10} {:>12} {:>12} {:>12} {:>12}",
        "latency histogram", "count", "p50", "p90", "p99", "p999"
    );
    for name in probe_names {
        let Some(h) = hists.iter().find(|h| h.name == name) else {
            continue;
        };
        let fmt = |q: f64| match h.quantile(q) {
            Some(v) => format!("{v:.1}"),
            None => "-".to_string(),
        };
        println!(
            "{:<26} {:>10} {:>12} {:>12} {:>12} {:>12}",
            h.name,
            h.count,
            fmt(0.5),
            fmt(0.9),
            fmt(0.99),
            fmt(0.999)
        );
    }

    if args.flag("profile") {
        print_profile(&probe_snap);
    }

    if let Some(path) = args.options.get("check") {
        let baseline = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read baseline {path}: {e}"))?;
        match scan_number(&baseline, "events_per_sec_overall") {
            Some(base_eps) if base_eps > 0.0 => {
                let ratio = overall / base_eps;
                println!(
                    "regression gate: {overall:.0} events/s vs baseline {base_eps:.0} \
                     ({ratio:.2}x)"
                );
                if ratio < 0.8 {
                    return Err(format!(
                        "PERF REGRESSION: events/sec dropped >20% vs {path} \
                         ({overall:.0} vs {base_eps:.0})"
                    )
                    .into());
                }
            }
            _ => return Err(format!("baseline {path} has no events_per_sec_overall").into()),
        }
        // Gate the mega executor too — but only when this run measured it
        // and the baseline recorded it (older baselines predate the mega
        // executor and must keep passing).
        if let (Some(mo), Some(base_mega)) =
            (mega_overall, scan_number(&baseline, "mega_events_per_sec"))
        {
            if base_mega > 0.0 {
                let ratio = mo / base_mega;
                println!(
                    "mega regression gate: {mo:.0} events/s vs baseline {base_mega:.0} \
                     ({ratio:.2}x)"
                );
                if ratio < 0.8 {
                    return Err(format!(
                        "PERF REGRESSION: mega events/sec dropped >20% vs {path} \
                         ({mo:.0} vs {base_mega:.0})"
                    )
                    .into());
                }
            }
        }
        // Gate the 64-session mega-vs-per-cell speedup: the headline the
        // mega hot-path work bought. Both sides are medians of interleaved
        // per-pair ratios (see the probe above). Only enforced when the
        // baseline recorded the ratio (older baselines predate the key); a
        // 10% tolerance absorbs shared-hardware noise on the two probes.
        if let (Some(ratio), Some(base_ratio)) = (
            mega_vs_percell_64,
            scan_number(&baseline, "mega_vs_percell_ratio"),
        ) {
            if base_ratio > 0.0 {
                println!(
                    "mega-vs-percell gate: {ratio:.2}x vs baseline {base_ratio:.2}x"
                );
                if ratio < base_ratio * 0.9 {
                    return Err(format!(
                        "PERF REGRESSION: mega-vs-percell speedup dropped >10% vs {path} \
                         ({ratio:.2}x vs {base_ratio:.2}x)"
                    )
                    .into());
                }
            }
        }
    }

    let out = args
        .options
        .get("out")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(default_out);
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"campaign\",\n");
    json.push_str(&format!("  \"reps\": {reps},\n"));
    json.push_str(&format!("  \"duration_secs\": {duration},\n"));
    json.push_str(&format!(
        "  \"grid\": {{\"tests\": [\"T1\"], \"k_values\": [2, 4], \"seeds\": {}, \
         \"sessions\": {}}},\n",
        seeds.len(),
        spec.len()
    ));
    json.push_str(&format!(
        "  \"thread_counts\": [{}],\n",
        thread_counts
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    ));
    json.push_str(&format!(
        "  \"speedup_warm_vs_cold_1thread\": {warm_vs_cold:.4},\n"
    ));
    json.push_str(&format!(
        "  \"speedup_warm_8_vs_1_threads\": {agg_8_vs_1:.4},\n"
    ));
    json.push_str(&format!("  \"events_per_sec_overall\": {overall:.1},\n"));
    if let Some(mo) = mega_overall {
        json.push_str(&format!("  \"mega_events_per_sec\": {mo:.1},\n"));
    }
    if let (Some((p, m, _)), Some(ratio)) = (&mega64, mega_vs_percell_64) {
        json.push_str(&format!(
            "  \"mega_vs_percell_64sessions\": {{\"sessions\": {}, \"threads\": 1, \
             \"percell_events_per_sec\": {:.1}, \"mega_events_per_sec\": {:.1}, \
             \"speedup\": {ratio:.4}}},\n",
            p.sessions,
            p.events_per_sec(),
            m.events_per_sec()
        ));
        // Flat copy of the speedup for the `--check` gate's string scan.
        json.push_str(&format!("  \"mega_vs_percell_ratio\": {ratio:.4},\n"));
    }
    json.push_str(&format!(
        "  \"steady_state_allocs\": {{\"first_session\": {cold_first}, \
         \"second_session_warm\": {warm_second}, \"third_session_steady\": {warm_third}}},\n"
    ));
    // p99 latencies from the instrumented rep — tracked for trend-spotting
    // only, never gated: they are wall-clock noise on shared hardware.
    {
        let q = |name: &str| probe_quantile(hists, name, 0.99);
        let mut fields: Vec<String> = Vec::new();
        let mut push = |key: &str, v: Option<f64>| {
            if let Some(v) = v {
                fields.push(format!("\"{key}\": {v:.1}"));
            }
        };
        push("sched_dispatch_p99_ns", q("sched.dispatch_ns"));
        // Renamed from sched_wheel_slack_p99_ns in PR 10: the value is the
        // arming horizon (how far ahead of the cursor timers land), which
        // legitimately sits around ~1 s — it was never delivery lateness.
        push("sched_wheel_horizon_p99_ns", q("sched.wheel_horizon_ns"));
        push("campaign_session_wall_p99_ms", q("campaign.session_wall_ms"));
        push("mega_session_event_p99_ns", q("mega.session_event_ns"));
        push("mega_batch_size_p99", q("mega.batch_size"));
        if !fields.is_empty() {
            json.push_str(&format!(
                "  \"latency_p99\": {{{}}},\n",
                fields.join(", ")
            ));
        }
    }
    json.push_str(&format!("  \"fingerprint\": \"{fp0:016x}\",\n"));
    // Per-transport interop fingerprints live in their own block: unlike
    // `cells`, these are *expected* to differ from `fingerprint` and from
    // each other (different congestion controllers, different traces).
    json.push_str("  \"interop\": [\n");
    for (i, c) in interop.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"transport\": \"{}\", \"fingerprint\": \"{:016x}\", \"sessions\": {}, \
             \"events\": {}, \"events_per_sec\": {:.1}}}{}\n",
            c.transport,
            c.fingerprint,
            c.sessions,
            c.events,
            c.events_per_sec(),
            if i + 1 < interop.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    // Hostile (TraceLink) fingerprints: same contract as `interop` —
    // outside the fp0 gate, expected to differ per trace family, pinned
    // here so schedule or striping drift shows up in review.
    json.push_str("  \"hostile\": [\n");
    for (i, c) in hostile.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"trace\": \"{}\", \"fingerprint\": \"{:016x}\", \"sessions\": {}, \
             \"events\": {}, \"events_per_sec\": {:.1}}}{}\n",
            c.transport,
            c.fingerprint,
            c.sessions,
            c.events,
            c.events_per_sec(),
            if i + 1 < hostile.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"mode\": \"{}\", \"transport\": \"{}\", \"scheduler\": \"{}\", \
             \"threads\": {}, \"threads_effective\": {}, \
             \"events\": {}, \"wall_secs\": {:.6}, \"merge_secs\": {:.6}, \
             \"events_per_sec\": {:.1}, \"allocs_per_session\": {}}}{}\n",
            c.mode,
            c.transport,
            c.sched.label(),
            c.threads,
            c.threads_effective,
            c.events,
            c.wall_secs,
            c.merge_secs,
            c.events_per_sec(),
            c.allocs_per_session(),
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out, json)?;
    println!("wrote {}", out.display());
    Ok(())
}

fn main() {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.first().is_none_or(|a| a.starts_with("--")) {
        raw.insert(0, "run".to_string());
    }
    let args = match Args::parse(raw) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    if args.command != "run" {
        eprintln!(
            "error: unexpected argument '{}' — this binary takes options only \
             (--smoke, --mega, --profile, --threads LIST, --duration S, --reps N, \
             --out FILE, --check FILE)",
            args.command
        );
        std::process::exit(2);
    }
    if let Err(e) = run(&args) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
