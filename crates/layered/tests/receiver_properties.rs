//! Property-based tests for the layered media substrate.
//!
//! Randomization comes from `laqa_check` (a seeded in-repo harness) rather
//! than proptest, so the suite runs with zero registry access.

use laqa_check::{cases, DEFAULT_CASES};
use laqa_layered::{LayerBuffer, LayeredEncoding, LayeredReceiver, LayeredStream, PacketId};

#[test]
fn buffer_conserves_bytes() {
    cases("buffer_conserves_bytes", DEFAULT_CASES, |g, _| {
        let n_ops = g.usize_in(1, 199);
        let ops: Vec<(f64, bool)> = (0..n_ops)
            .map(|_| (g.f64_range(0.0, 10_000.0), g.bool(0.5)))
            .collect();
        let mut b = LayerBuffer::new();
        let mut pushed = 0.0;
        let mut consumed = 0.0;
        for (i, &(amount, is_push)) in ops.iter().enumerate() {
            if is_push {
                b.push(i as f64, amount);
                pushed += amount;
            } else {
                consumed += b.consume(amount);
            }
            assert!(b.buffered() >= -1e-9);
        }
        assert!(
            (pushed - consumed - b.buffered()).abs() < 1e-6,
            "pushed {pushed} consumed {consumed} left {}",
            b.buffered()
        );
    });
}

#[test]
fn consume_never_returns_more_than_requested() {
    cases(
        "consume_never_returns_more_than_requested",
        DEFAULT_CASES,
        |g, _| {
            let pushes = g.vec_f64(0.0, 5_000.0, 1, 49);
            let want = g.f64_range(0.0, 100_000.0);
            let mut b = LayerBuffer::new();
            for (i, &p) in pushes.iter().enumerate() {
                b.push(i as f64, p);
            }
            let got = b.consume(want);
            assert!(got <= want + 1e-9);
            assert!(got <= pushes.iter().sum::<f64>() + 1e-9);
        },
    );
}

#[test]
fn receiver_position_advances_iff_playing() {
    cases(
        "receiver_position_advances_iff_playing",
        DEFAULT_CASES,
        |g, _| {
            let feeds = g.vec_f64(0.0, 2_000.0, 10, 99);
            let enc = LayeredEncoding::linear(3, 10_000.0).unwrap();
            let mut r = LayeredReceiver::new(enc, 2, 0.5);
            let mut t = 0.0;
            for &f in &feeds {
                r.on_data(t, 0, f);
                r.on_data(t, 1, f);
                let was_playing = r.playing();
                let pos_before = r.position();
                r.advance(0.1);
                if was_playing {
                    assert!((r.position() - pos_before - 0.1).abs() < 1e-9);
                } else if !r.playing() {
                    assert_eq!(r.position(), 0.0);
                }
                t += 0.1;
            }
        },
    );
}

#[test]
fn stream_deadlines_monotone() {
    cases("stream_deadlines_monotone", DEFAULT_CASES, |g, _| {
        let layer = g.u32_in(0, 3) as u8;
        let n_seqs = g.usize_in(2, 49);
        let mut seqs: Vec<u64> = (0..n_seqs).map(|_| g.u64_in(0, 9_999)).collect();
        let enc = LayeredEncoding::exponential(4, 4_000.0, 2.0).unwrap();
        let s = LayeredStream::new(enc, 120.0, 1_000);
        seqs.sort_unstable();
        let mut last = -1.0;
        for &seq in &seqs {
            let d = s.deadline(PacketId { layer, seq });
            assert!(d >= last);
            last = d;
        }
    });
}

#[test]
fn payload_verification_rejects_any_flip() {
    cases(
        "payload_verification_rejects_any_flip",
        DEFAULT_CASES,
        |g, _| {
            let seq = g.u64_in(0, 999);
            let layer = g.u32_in(0, 3) as u8;
            let len = g.usize_in(9, 599);
            let flip = g.usize_in(0, 599);
            let enc = LayeredEncoding::linear(4, 10_000.0).unwrap();
            let s = LayeredStream::new(enc, 60.0, 1_000);
            let id = PacketId { layer, seq };
            let mut p = s.payload(id, len);
            assert!(s.verify_payload(id, &p));
            let idx = flip % len;
            p[idx] ^= 0x01;
            assert!(!s.verify_payload(id, &p));
        },
    );
}

#[test]
fn layers_within_is_monotone_in_bandwidth() {
    cases(
        "layers_within_is_monotone_in_bandwidth",
        DEFAULT_CASES,
        |g, _| {
            let bw1 = g.f64_range(0.0, 100_000.0);
            let bw2 = g.f64_range(0.0, 100_000.0);
            let enc = LayeredEncoding::exponential(5, 2_000.0, 1.6).unwrap();
            let (lo, hi) = if bw1 <= bw2 { (bw1, bw2) } else { (bw2, bw1) };
            assert!(enc.layers_within(lo) <= enc.layers_within(hi));
        },
    );
}
