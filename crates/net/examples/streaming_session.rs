//! Real-socket streaming: a quality-adaptive video server and a buffering
//! client talking UDP through an in-process bottleneck (token-bucket
//! shaper with drop-tail queue and propagation delay) — the paper's §1.1
//! web-video scenario on your loopback.
//!
//! ```sh
//! cargo run -p laqa-apps --example streaming_session
//! ```

use laqa_net::{run_session, SessionConfig, ShaperConfig};
use tokio::time::Duration;

fn main() {
    let rt = tokio::runtime::Builder::new_multi_thread()
        .worker_threads(2)
        .enable_all()
        .build()
        .expect("tokio runtime");

    // A DSL-ish path: 320 Kb/s, 40 ms RTT, a 30-packet drop-tail queue.
    let cfg = SessionConfig {
        shaper: ShaperConfig {
            bandwidth: 40_000.0,
            delay: Duration::from_millis(20),
            queue_packets: 30,
            ..ShaperConfig::default()
        },
        duration: 8.0,
        ..SessionConfig::default()
    };
    println!(
        "streaming an 8 s session over a {:.0} B/s loopback bottleneck...",
        cfg.shaper.bandwidth
    );

    let report = rt.block_on(run_session(cfg)).expect("session");

    println!(
        "server sent        : {} packets",
        report.server.sent_packets
    );
    println!("  per layer        : {:?}", report.server.sent_per_layer);
    println!("client received    : {} packets", report.client.received);
    println!("bottleneck dropped : {} packets", report.bottleneck_drops);
    println!("payload corruption : {} packets", report.client.corrupt);
    println!("RAP backoffs       : {}", report.server.backoffs);
    println!(
        "quality changes    : {}",
        report.server.metrics.quality_changes()
    );
    println!(
        "peak quality       : {} layers",
        report.server.n_active_trace.max().unwrap_or(0.0)
    );
    println!("clean shutdown     : {}", report.client.got_fin);
    assert_eq!(report.client.corrupt, 0, "payloads must verify end-to-end");
}
