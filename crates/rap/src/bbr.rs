//! A BBR-style model-based controller behind the [`RateController`] trait.
//!
//! Where RAP probes with a blind AIMD sawtooth, this sender builds an
//! explicit model of the path — a windowed **max-filter over delivery-rate
//! samples** (the bottleneck bandwidth estimate `BtlBw`) and a windowed
//! **min-filter over RTT samples** (`RTprop`) — and paces at
//! `pacing_gain · BtlBw`. The gain follows the classic probe cycle: one
//! round at 1.25× to look for newly-free bandwidth, one at 0.75× to drain
//! the queue the probe built, then six rounds at 1× to cruise.
//!
//! The QA layer's contract is honoured as follows:
//!
//! * **rate** — the paced rate `gain · BtlBw`, clamped to
//!   `[min, max_rate]`;
//! * **slope** — the local linearization `packet_size / srtt²`: a probe
//!   round lifts the estimate by at most a packet-per-RTT-ish amount per
//!   round for a paced flow sharing a drop-tail bottleneck, so the RAP
//!   slope is the right planning number (and keeps the deficit-triangle
//!   geometry finite);
//! * **backoff** — loss clusters discount the bandwidth model by
//!   [`LOSS_BETA`] (once per congestion event, same cluster suppression as
//!   RAP) and report the realized post/pre ratio; a timeout collapses the
//!   model to the floor rate. The nominal decrease factor surfaced to the
//!   QA geometry is therefore `LOSS_BETA`.
//!
//! Everything is deterministic: filters are pure functions of the ACK
//! stream and the polled clock.

use crate::controller::RateController;
use crate::history::{PacketRecord, TransmissionHistory};
use crate::receiver::AckInfo;
use crate::rtt::RttEstimator;
use crate::sender::{BackoffCause, RapEvent};
use std::collections::VecDeque;

/// Multiplicative discount applied to the bandwidth model on a loss
/// cluster — the controller's nominal decrease factor.
pub const LOSS_BETA: f64 = 0.85;

/// Pacing-gain cycle after startup: probe up, drain, cruise ×6.
const GAIN_CYCLE: [f64; 8] = [1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];

/// Startup pacing gain (fast initial ramp, ~2/ln2 in real BBR).
const STARTUP_GAIN: f64 = 2.0;

/// Rounds without ≥ [`FULL_BW_THRESH`] bandwidth growth before startup
/// exits into the steady-state cycle.
const FULL_BW_ROUNDS: u32 = 3;

/// Per-round growth that still counts as "filling the pipe".
const FULL_BW_THRESH: f64 = 1.25;

/// BBR-style sender configuration.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BbrConfig {
    /// Payload bytes per packet.
    pub packet_size: f64,
    /// Initial transmission rate (bytes/s) before the model has samples.
    pub initial_rate: f64,
    /// Initial RTT guess (seconds).
    pub initial_rtt: f64,
    /// Packets after a hole before it is declared lost.
    pub reorder_threshold: u64,
    /// Rate ceiling (bytes/s), `INFINITY` for none.
    pub max_rate: f64,
    /// Bandwidth max-filter window (probe rounds).
    pub btlbw_rounds: u64,
    /// Min-RTT filter window (seconds).
    pub rtprop_window: f64,
}

impl Default for BbrConfig {
    fn default() -> Self {
        BbrConfig {
            packet_size: 1_000.0,
            initial_rate: 2_000.0,
            initial_rtt: 0.2,
            reorder_threshold: 3,
            max_rate: f64::INFINITY,
            btlbw_rounds: 10,
            rtprop_window: 10.0,
        }
    }
}

/// BBR-style delivery-rate-model sender. Paced, like RAP; drive it with
/// the same loop (see [`RateController`]).
#[derive(Debug, Clone)]
pub struct BbrSender {
    cfg: BbrConfig,
    rtt: RttEstimator,
    history: TransmissionHistory,
    /// Windowed max over delivery-rate samples: `(round, sample)` kept
    /// monotone decreasing in `sample`.
    bw_filter: VecDeque<(u64, f64)>,
    /// Model fallback when the filter is empty (initial rate, or the
    /// floor after a timeout collapse).
    fallback_bw: f64,
    /// Windowed min over RTT samples: `(time, rtt)` kept monotone
    /// increasing in `rtt`.
    rtprop_filter: VecDeque<(f64, f64)>,
    /// Cumulative acked bytes (delivery-rate numerator).
    delivered: f64,
    /// Recent `(time, delivered)` checkpoints spanning about one SRTT.
    delivery_samples: VecDeque<(f64, f64)>,
    /// Probe-round counter (advances once per SRTT).
    round: u64,
    next_round: f64,
    /// Startup state: true until the bandwidth estimate plateaus.
    startup: bool,
    full_bw: f64,
    full_bw_count: u32,
    /// A loss happened during startup: exit it at the next round
    /// boundary. Exiting inside the loss handler would change the pacing
    /// gain mid-backoff and corrupt the reported post/pre ratio.
    loss_ends_startup: bool,
    /// Index into [`GAIN_CYCLE`] once out of startup.
    cycle_idx: usize,
    next_seq: u64,
    next_send: f64,
    recovery_seq: Option<u64>,
    last_progress: f64,
    timeouts_in_row: u32,
    events: Vec<RapEvent>,
}

impl BbrSender {
    /// New sender whose clock starts at `now`.
    pub fn new(cfg: BbrConfig, now: f64) -> Self {
        let rtt = RttEstimator::new(cfg.initial_rtt);
        let srtt = rtt.srtt();
        BbrSender {
            history: TransmissionHistory::new(cfg.reorder_threshold),
            rtt,
            bw_filter: VecDeque::new(),
            fallback_bw: cfg.initial_rate.max(cfg.packet_size),
            rtprop_filter: VecDeque::new(),
            delivered: 0.0,
            delivery_samples: VecDeque::new(),
            round: 0,
            next_round: now + srtt,
            startup: true,
            full_bw: 0.0,
            full_bw_count: 0,
            loss_ends_startup: false,
            cycle_idx: 0,
            next_seq: 0,
            next_send: now,
            recovery_seq: None,
            last_progress: now,
            timeouts_in_row: 0,
            events: Vec::new(),
            cfg,
        }
    }

    /// Floor rate: one packet per second, same as RAP's AIMD floor.
    fn min_rate(&self) -> f64 {
        self.cfg.packet_size
    }

    /// Bottleneck-bandwidth estimate (bytes/s): the filter max, or the
    /// fallback before any sample exists.
    pub fn btlbw(&self) -> f64 {
        self.bw_filter
            .front()
            .map_or(self.fallback_bw, |&(_, s)| s)
    }

    /// Path propagation-delay estimate (seconds): the windowed RTT min,
    /// or the initial guess before any sample exists.
    pub fn rtprop(&self) -> f64 {
        self.rtprop_filter
            .front()
            .map_or(self.cfg.initial_rtt, |&(_, r)| r)
    }

    /// Smoothed RTT (seconds).
    pub fn srtt(&self) -> f64 {
        self.rtt.srtt()
    }

    /// Current pacing gain.
    fn gain(&self) -> f64 {
        if self.startup {
            STARTUP_GAIN
        } else {
            GAIN_CYCLE[self.cycle_idx]
        }
    }

    fn paced_rate(&self) -> f64 {
        (self.gain() * self.btlbw()).clamp(self.min_rate(), self.cfg.max_rate)
    }

    /// Consecutive timeouts without intervening ACK progress.
    pub fn timeouts_in_row(&self) -> u32 {
        self.timeouts_in_row
    }

    /// Configured packet size (bytes).
    pub fn packet_size(&self) -> f64 {
        self.cfg.packet_size
    }

    /// The configuration this sender was built with.
    pub fn config(&self) -> &BbrConfig {
        &self.cfg
    }

    fn timeout_deadline(&self) -> f64 {
        if self.history.outstanding() == 0 {
            return f64::INFINITY;
        }
        self.last_progress + self.rtt.rto()
    }

    /// Record an RTT sample into both the smoothed estimator and the
    /// windowed min-filter.
    fn sample_rtt(&mut self, now: f64, sample: f64) {
        self.rtt.sample(sample);
        while self
            .rtprop_filter
            .back()
            .is_some_and(|&(_, r)| r >= sample)
        {
            self.rtprop_filter.pop_back();
        }
        self.rtprop_filter.push_back((now, sample));
        while self
            .rtprop_filter
            .front()
            .is_some_and(|&(t, _)| t < now - self.cfg.rtprop_window)
            && self.rtprop_filter.len() > 1
        {
            self.rtprop_filter.pop_front();
        }
    }

    /// Fold a delivery-rate sample into the windowed max-filter.
    fn push_bw_sample(&mut self, sample: f64) {
        if !(sample.is_finite() && sample > 0.0) {
            return;
        }
        while self.bw_filter.back().is_some_and(|&(_, s)| s <= sample) {
            self.bw_filter.pop_back();
        }
        self.bw_filter.push_back((self.round, sample));
        self.expire_bw();
    }

    fn expire_bw(&mut self) {
        while self
            .bw_filter
            .front()
            .is_some_and(|&(r, _)| self.round.saturating_sub(r) > self.cfg.btlbw_rounds)
            && self.bw_filter.len() > 1
        {
            self.bw_filter.pop_front();
        }
    }

    /// Update the delivery-rate estimate after `delivered` grew.
    fn sample_delivery_rate(&mut self, now: f64) {
        self.delivery_samples.push_back((now, self.delivered));
        let horizon = now - self.rtt.srtt().max(1e-3);
        while self.delivery_samples.len() > 2
            && self.delivery_samples[1].0 <= horizon
        {
            self.delivery_samples.pop_front();
        }
        if let (Some(&(t0, d0)), Some(&(t1, d1))) =
            (self.delivery_samples.front(), self.delivery_samples.back())
        {
            if t1 > t0 {
                self.push_bw_sample((d1 - d0) / (t1 - t0));
            }
        }
    }

    fn advance_round(&mut self, at: f64) {
        self.round += 1;
        self.expire_bw();
        let rate_before = self.paced_rate();
        if self.startup && self.loss_ends_startup {
            // The pipe is demonstrably full; drain the queue the probe
            // built, then cruise.
            self.startup = false;
            self.cycle_idx = 1;
        } else if self.startup {
            let bw = self.btlbw();
            if bw >= self.full_bw * FULL_BW_THRESH {
                self.full_bw = bw;
                self.full_bw_count = 0;
            } else {
                self.full_bw_count += 1;
                if self.full_bw_count >= FULL_BW_ROUNDS {
                    self.startup = false;
                    self.cycle_idx = 0;
                }
            }
        } else {
            self.cycle_idx = (self.cycle_idx + 1) % GAIN_CYCLE.len();
        }
        let rate = self.paced_rate();
        if rate > rate_before {
            self.events.push(RapEvent::RateIncrease { time: at, rate });
        }
    }

    fn handle_losses(
        &mut self,
        now: f64,
        losses: Vec<crate::history::LostPacket>,
        cause: BackoffCause,
    ) {
        if losses.is_empty() {
            return;
        }
        let mut new_event = false;
        for l in &losses {
            self.events.push(RapEvent::PacketLost {
                time: now,
                seq: l.seq,
                size: l.record.size,
                tag: l.record.tag,
            });
            if self.recovery_seq.is_none_or(|r| l.seq > r) {
                new_event = true;
            }
        }
        if new_event {
            let pre_rate = self.paced_rate();
            // Discount the whole model, not just the current max — the
            // shadowed samples would otherwise resurface undiscounted as
            // the front expires.
            for (_, s) in self.bw_filter.iter_mut() {
                *s *= LOSS_BETA;
            }
            self.fallback_bw = (self.fallback_bw * LOSS_BETA).max(self.min_rate());
            self.loss_ends_startup = true;
            self.recovery_seq = self.next_seq.checked_sub(1);
            self.events.push(RapEvent::Backoff {
                time: now,
                rate: self.paced_rate(),
                pre_rate,
                slope: RateController::slope(self),
                cause,
            });
        }
    }
}

impl RateController for BbrSender {
    fn rate(&self) -> f64 {
        self.paced_rate()
    }

    fn slope(&self) -> f64 {
        let srtt = self.rtt.srtt().max(1e-6);
        self.cfg.packet_size / (srtt * srtt)
    }

    fn next_send_time(&self, _now: f64) -> f64 {
        self.next_send
    }

    fn next_timer(&self) -> f64 {
        self.next_round.min(self.timeout_deadline())
    }

    fn register_send(&mut self, now: f64, size: f64, tag: u32) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.history.on_send(
            seq,
            PacketRecord {
                send_time: now,
                size,
                tag,
            },
        );
        let ipg = self.cfg.packet_size / self.paced_rate();
        // Pace from the scheduled time (same rule as RAP) so owner-loop
        // jitter does not accumulate rate error.
        self.next_send = self.next_send.max(now - ipg) + ipg;
        if self.history.outstanding() == 1 {
            self.last_progress = now;
        }
        seq
    }

    fn on_ack(&mut self, now: f64, ack: AckInfo) {
        self.last_progress = now;
        self.timeouts_in_row = 0;
        self.rtt.reset_backoff();
        let mut resolved: Vec<(u64, PacketRecord)> = Vec::new();
        if let Some(record) = self.history.mark_received(ack.ack_seq) {
            let sample = now - record.send_time;
            self.sample_rtt(now, sample);
            resolved.push((ack.ack_seq, record));
        }
        if ack.cum_seq != u64::MAX {
            resolved.extend(self.history.mark_received_upto(ack.cum_seq));
        }
        if ack.highest >= 1 {
            let valid = if ack.highest >= 64 {
                u64::MAX
            } else {
                (1u64 << ack.highest) - 1
            };
            let mut bits = ack.mask & valid;
            while bits != 0 {
                let i = u64::from(bits.trailing_zeros());
                bits &= bits - 1;
                if let Some(r) = self.history.mark_received(ack.highest - 1 - i) {
                    resolved.push((ack.highest - 1 - i, r));
                }
            }
        }
        for (seq, record) in resolved {
            self.delivered += record.size;
            self.events.push(RapEvent::PacketAcked {
                time: now,
                seq,
                size: record.size,
                tag: record.tag,
            });
        }
        self.sample_delivery_rate(now);
        let losses = self.history.detect_losses();
        self.handle_losses(now, losses, BackoffCause::Loss);
    }

    fn poll_timers(&mut self, now: f64) {
        if now >= self.timeout_deadline() {
            let losses = self.history.flush_all_as_lost();
            for l in &losses {
                self.events.push(RapEvent::PacketLost {
                    time: now,
                    seq: l.seq,
                    size: l.record.size,
                    tag: l.record.tag,
                });
            }
            self.rtt.on_timeout();
            self.timeouts_in_row = self.timeouts_in_row.saturating_add(1);
            let pre_rate = self.paced_rate();
            // Collapse the model: the path stopped answering, so nothing
            // it learned is trustworthy. Cruise gain (not startup) so the
            // post-collapse rate is the floor itself — re-entering startup
            // here would make the "backoff" *raise* the rate when the
            // model was already at the floor.
            self.bw_filter.clear();
            self.fallback_bw = self.min_rate();
            self.delivery_samples.clear();
            self.startup = false;
            self.cycle_idx = 2;
            self.full_bw = 0.0;
            self.full_bw_count = 0;
            self.loss_ends_startup = false;
            self.recovery_seq = self.next_seq.checked_sub(1);
            self.last_progress = now;
            self.events.push(RapEvent::Backoff {
                time: now,
                rate: self.paced_rate(),
                pre_rate,
                slope: RateController::slope(self),
                cause: BackoffCause::Timeout,
            });
        }
        while now >= self.next_round {
            let at = self.next_round;
            self.advance_round(at);
            self.next_round += self.rtt.srtt().max(1e-3);
        }
    }

    fn drain_events_into(&mut self, out: &mut Vec<RapEvent>) {
        out.append(&mut self.events);
    }

    fn restart(&mut self, start_at: f64) {
        *self = BbrSender::new(self.cfg.clone(), start_at);
    }

    fn decrease_factor(&self) -> f64 {
        LOSS_BETA
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::receiver::RapReceiverState;

    fn sender(max_rate: f64) -> BbrSender {
        BbrSender::new(
            BbrConfig {
                initial_rate: 10_000.0,
                initial_rtt: 0.1,
                max_rate,
                ..BbrConfig::default()
            },
            0.0,
        )
    }

    /// Echo path with one-way delay `owd` dropping every `loss_every`-th
    /// packet (0 = lossless). Returns (sender, backoff list as
    /// `(pre, post)` pairs).
    fn run(
        mut s: BbrSender,
        dur: f64,
        owd: f64,
        loss_every: u64,
    ) -> (BbrSender, Vec<(f64, f64)>) {
        let mut rx = RapReceiverState::new();
        let mut now = 0.0;
        let mut pipe: Vec<(f64, u64)> = Vec::new();
        let mut backoffs = Vec::new();
        let mut events = Vec::new();
        while now < dur {
            s.poll_timers(now);
            while !pipe.is_empty() && pipe[0].0 <= now {
                let (_, seq) = pipe.remove(0);
                s.on_ack(now, rx.on_data(seq));
            }
            while now >= RateController::next_send_time(&s, now) {
                let seq = RateController::register_send(&mut s, now, 1_000.0, 0);
                if loss_every == 0 || seq % loss_every != loss_every - 1 {
                    pipe.push((now + 2.0 * owd, seq));
                }
            }
            s.drain_events_into(&mut events);
            for e in events.drain(..) {
                if let RapEvent::Backoff { rate, pre_rate, .. } = e {
                    backoffs.push((pre_rate, rate));
                }
            }
            now += 0.001;
        }
        (s, backoffs)
    }

    #[test]
    fn learns_the_path_without_loss() {
        // Unlimited echo path: startup must ramp the model well past the
        // initial rate, and rtprop must find the 40 ms path RTT.
        let (s, backoffs) = run(sender(f64::INFINITY), 3.0, 0.02, 0);
        assert!(s.btlbw() > 100_000.0, "btlbw {}", s.btlbw());
        assert!((s.rtprop() - 0.04).abs() < 0.02, "rtprop {}", s.rtprop());
        assert!(backoffs.is_empty());
    }

    #[test]
    fn respects_max_rate_bound() {
        let (s, _) = run(sender(50_000.0), 3.0, 0.02, 0);
        assert!(RateController::rate(&s) <= 50_000.0 + 1e-9);
    }

    #[test]
    fn loss_discounts_model_once_per_cluster() {
        let mut s = sender(f64::INFINITY);
        let mut rx = RapReceiverState::new();
        for i in 0..10u64 {
            RateController::register_send(&mut s, i as f64 * 0.01, 1_000.0, 0);
        }
        // Lose 3 and 5 from the same flight: one congestion event.
        for seq in (0..10u64).filter(|q| *q != 3 && *q != 5) {
            s.on_ack(0.3, rx.on_data(seq));
        }
        let mut events = Vec::new();
        s.drain_events_into(&mut events);
        let backoffs: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                RapEvent::Backoff { rate, pre_rate, .. } => Some((*pre_rate, *rate)),
                _ => None,
            })
            .collect();
        assert_eq!(backoffs.len(), 1, "cluster suppression");
        let (pre, post) = backoffs[0];
        let ratio = post / pre;
        assert!(
            (ratio - LOSS_BETA).abs() < 1e-9,
            "realized factor {ratio} vs nominal {LOSS_BETA}"
        );
    }

    #[test]
    fn every_backoff_ratio_in_unit_interval() {
        let (s, backoffs) = run(sender(f64::INFINITY), 10.0, 0.02, 40);
        assert!(!backoffs.is_empty(), "periodic loss must back off");
        for (pre, post) in backoffs {
            assert!(pre > 0.0 && post > 0.0);
            let ratio = post / pre;
            assert!(
                ratio > 0.0 && ratio <= 1.0,
                "ratio {ratio} out of (0, 1]"
            );
        }
        assert!(RateController::rate(&s) >= s.packet_size());
    }

    #[test]
    fn timeout_collapses_to_floor() {
        let mut s = sender(f64::INFINITY);
        for i in 0..5u64 {
            RateController::register_send(&mut s, i as f64 * 0.01, 1_000.0, 0);
        }
        s.poll_timers(30.0);
        assert_eq!(RateController::rate(&s), s.packet_size());
        let mut events = Vec::new();
        s.drain_events_into(&mut events);
        assert!(events.iter().any(|e| matches!(
            e,
            RapEvent::Backoff {
                cause: BackoffCause::Timeout,
                ..
            }
        )));
    }

    #[test]
    fn deterministic_across_identical_runs() {
        let (a, _) = run(sender(f64::INFINITY), 5.0, 0.02, 60);
        let (b, _) = run(sender(f64::INFINITY), 5.0, 0.02, 60);
        assert_eq!(a.btlbw().to_bits(), b.btlbw().to_bits());
        assert_eq!(
            RateController::rate(&a).to_bits(),
            RateController::rate(&b).to_bits()
        );
    }
}
