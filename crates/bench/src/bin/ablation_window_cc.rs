//! **Extension experiment (§7)** — quality adaptation over two different
//! AIMD transports: RAP (rate-paced) vs an ACK-clocked TCP-like window.
//!
//! The paper conjectures the mechanism ports to any AIMD scheme. Both
//! sources drive the *same* `QaController` over the same single-flow
//! bottleneck; the comparison shows the mechanism's guarantees (base
//! layer intact, quality tracks bandwidth) hold under both clockings,
//! while the burstier window transport produces a noisier rate signal and
//! somewhat more quality changes.

use laqa_bench::{ascii_plot, outdir};
use laqa_core::QaConfig;
use laqa_layered::LayeredEncoding;
use laqa_rap::{RapConfig, WindowConfig};
use laqa_sim::agents::qa::{QaSinkAgent, QaSourceAgent};
use laqa_sim::agents::qa_window::QaWindowSourceAgent;
use laqa_sim::{LinkConfig, World};
use laqa_trace::{RunSummary, Table};

struct Outcome {
    mean_layers: f64,
    changes: usize,
    stalls: usize,
    base_underflows: u64,
    plot: String,
}

fn qa_cfg() -> QaConfig {
    QaConfig {
        layer_rate: 5_000.0,
        max_layers: 6,
        k_max: 2,
        underflow_slack_bytes: 2_000.0,
        ..QaConfig::default()
    }
}

fn build_world(bw: f64) -> (World, usize, usize) {
    let mut w = World::new(31);
    let fwd = w.add_link(LinkConfig {
        bandwidth: bw,
        delay: 0.02,
        queue_packets: 20,
        ..LinkConfig::default()
    });
    let rev = w.add_link(LinkConfig::uncongested());
    let cfg = qa_cfg();
    let encoding = LayeredEncoding::linear(cfg.max_layers, cfg.layer_rate).unwrap();
    let sink_id = w.add_agent(Box::new(QaSinkAgent::new(
        1,
        vec![rev],
        1,
        encoding,
        2.0 * cfg.startup_buffer_secs,
        0.05,
    )));
    (w, sink_id, fwd)
}

fn analyze(
    n_active: &laqa_trace::TimeSeries,
    stalls: usize,
    base_underflows: u64,
    warmup: f64,
) -> Outcome {
    let steady: Vec<f64> = n_active
        .points
        .iter()
        .filter(|&&(t, _)| t > warmup)
        .map(|&(_, v)| v)
        .collect();
    let mean_layers = steady.iter().sum::<f64>() / steady.len().max(1) as f64;
    let changes = steady
        .windows(2)
        .filter(|w| (w[0] - w[1]).abs() > 1e-9)
        .count();
    Outcome {
        mean_layers,
        changes,
        stalls,
        base_underflows,
        plot: ascii_plot(n_active, 64),
    }
}

fn run_rap(bw: f64, dur: f64) -> Outcome {
    let (mut w, sink_id, fwd) = build_world(bw);
    let rap = RapConfig {
        packet_size: 500.0,
        initial_rate: 2_000.0,
        initial_rtt: 0.06,
        max_rate: 1.25 * 30_000.0,
        ..RapConfig::default()
    };
    let src_id = w.add_agent(Box::new(QaSourceAgent::new(
        sink_id,
        vec![fwd],
        1,
        rap,
        qa_cfg(),
        0.05,
    )));
    w.run_until(dur);
    let src: &QaSourceAgent = w.agent(src_id).unwrap();
    let sink: &QaSinkAgent = w.agent(sink_id).unwrap();
    analyze(
        &src.traces.n_active,
        src.qa().metrics().stalls(),
        sink.receiver.stats().underflows[0],
        dur * 0.4,
    )
}

fn run_window(bw: f64, dur: f64) -> Outcome {
    let (mut w, sink_id, fwd) = build_world(bw);
    let cc = WindowConfig {
        packet_size: 500.0,
        initial_rtt: 0.06,
        max_cwnd: 80.0,
        ..WindowConfig::default()
    };
    let src_id = w.add_agent(Box::new(QaWindowSourceAgent::new(
        sink_id,
        vec![fwd],
        1,
        cc,
        qa_cfg(),
        0.05,
    )));
    w.run_until(dur);
    let src: &QaWindowSourceAgent = w.agent(src_id).unwrap();
    let sink: &QaSinkAgent = w.agent(sink_id).unwrap();
    analyze(
        &src.traces.n_active,
        src.qa().metrics().stalls(),
        sink.receiver.stats().underflows[0],
        dur * 0.4,
    )
}

fn main() {
    let bw = 25_000.0;
    let dur = 40.0;
    let rap = run_rap(bw, dur);
    let win = run_window(bw, dur);

    println!("== QA over two AIMD transports ({bw:.0} B/s bottleneck, {dur:.0}s) ==");
    println!("RAP (rate-paced)   layers: {}", rap.plot);
    println!("window (ACK-clock) layers: {}", win.plot);
    println!();
    let mut tbl = Table::new(
        "transport comparison (steady state)",
        &[
            "transport",
            "mean layers",
            "quality changes",
            "stalls",
            "rx base underflows",
        ],
    );
    tbl.row(vec![
        "RAP".into(),
        format!("{:.2}", rap.mean_layers),
        rap.changes.to_string(),
        rap.stalls.to_string(),
        rap.base_underflows.to_string(),
    ]);
    tbl.row(vec![
        "window".into(),
        format!("{:.2}", win.mean_layers),
        win.changes.to_string(),
        win.stalls.to_string(),
        win.base_underflows.to_string(),
    ]);
    println!("{}", tbl.render());
    println!("expected shape: both transports settle near the same layer count");
    println!("(same fair share), neither stalls the base layer; the window");
    println!("transport's burstier signal may cost extra quality changes.");

    let dir = outdir("ablation_window_cc");
    let mut summary = RunSummary::new("ablation_window_cc");
    summary
        .metric("rap_mean_layers", rap.mean_layers)
        .metric("window_mean_layers", win.mean_layers)
        .metric("rap_changes", rap.changes as f64)
        .metric("window_changes", win.changes as f64)
        .metric("rap_stalls", rap.stalls as f64)
        .metric("window_stalls", win.stalls as f64);
    summary
        .write_json(dir.join("summary.json"))
        .expect("summary");
    std::fs::write(dir.join("table.csv"), tbl.to_csv()).expect("csv");
    println!("wrote {}", dir.display());

    assert_eq!(rap.stalls + win.stalls, 0, "base layer must never stall");
    assert!(
        (rap.mean_layers - win.mean_layers).abs() < 2.0,
        "same ballpark share"
    );
}
