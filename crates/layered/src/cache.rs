//! Proxy caching of layered streams — the paper's closing future-work item
//! (§7): "quality adaptation provides a perfect opportunity for proxy
//! caching of multimedia streams … missing pieces that are likely to be
//! needed would be pre-fetched in a demand-driven fashion."
//!
//! Layered encoding makes a stream cache *partial by construction*: a
//! proxy that saw a session at 3 layers holds layers 0–2 and can replay
//! them locally, fetching only the enhancements a better-connected client
//! asks for. This module models that proxy state:
//!
//! * [`LayerCache`] — per-layer presence of media packets, hit/miss
//!   accounting, and the coverage summary ("which quality can be served
//!   locally up to time t");
//! * [`PrefetchPlanner`] — the demand-driven policy: given what recent
//!   sessions played, pre-fetch holes in the lowest uncached layer first
//!   (the same lowest-first discipline as the §2.4 buffer allocation, and
//!   for the same reason: lower layers are useful to every future client,
//!   higher ones only to the best-connected).

use crate::stream::PacketId;

/// Per-layer packet presence for one cached stream.
#[derive(Debug, Clone, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LayerCache {
    /// `present[layer][seq] == true` ⇔ the packet is cached. Vectors grow
    /// on demand.
    present: Vec<Vec<bool>>,
    hits: u64,
    misses: u64,
    stored: u64,
}

impl LayerCache {
    /// Empty cache for up to `n_layers` layers.
    pub fn new(n_layers: usize) -> Self {
        LayerCache {
            present: vec![Vec::new(); n_layers],
            hits: 0,
            misses: 0,
            stored: 0,
        }
    }

    /// Number of layers the cache tracks.
    pub fn n_layers(&self) -> usize {
        self.present.len()
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Packets stored so far.
    pub fn stored(&self) -> u64 {
        self.stored
    }

    /// Store a packet (idempotent).
    pub fn insert(&mut self, id: PacketId) {
        let Some(layer) = self.present.get_mut(id.layer as usize) else {
            return;
        };
        let idx = id.seq as usize;
        if layer.len() <= idx {
            layer.resize(idx + 1, false);
        }
        if !layer[idx] {
            layer[idx] = true;
            self.stored += 1;
        }
    }

    /// Whether a packet is cached (no accounting).
    pub fn contains(&self, id: PacketId) -> bool {
        self.present
            .get(id.layer as usize)
            .and_then(|l| l.get(id.seq as usize))
            .copied()
            .unwrap_or(false)
    }

    /// Serve a request: returns `true` on a hit; counts hit/miss.
    pub fn request(&mut self, id: PacketId) -> bool {
        let hit = self.contains(id);
        if hit {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        hit
    }

    /// The longest contiguous prefix of `layer` that is fully cached
    /// (packets `0..returned` all present).
    pub fn contiguous_prefix(&self, layer: usize) -> u64 {
        match self.present.get(layer) {
            None => 0,
            Some(l) => l.iter().take_while(|&&p| p).count() as u64,
        }
    }

    /// How many layers can be served *entirely* from cache for packets
    /// `0..horizon` — the locally replayable quality.
    pub fn serviceable_layers(&self, horizon: u64) -> usize {
        (0..self.present.len())
            .take_while(|&l| self.contiguous_prefix(l) >= horizon)
            .count()
    }

    /// Holes (missing sequences below `horizon`) in `layer`.
    pub fn holes(&self, layer: usize, horizon: u64) -> Vec<u64> {
        let empty = Vec::new();
        let l = self.present.get(layer).unwrap_or(&empty);
        (0..horizon)
            .filter(|&seq| !l.get(seq as usize).copied().unwrap_or(false))
            .collect()
    }
}

/// Demand-driven prefetch policy (§7): fill holes lowest-layer-first, and
/// within a layer in playout order, bounded by a per-round budget.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PrefetchPlanner {
    /// Highest layer any recent client asked for (+1 look-ahead layer —
    /// the "likely to be needed" piece: the next quality step up).
    pub demand_layers: usize,
    /// Per-round prefetch budget (packets).
    pub budget: usize,
}

impl PrefetchPlanner {
    /// Planner that prefetches up to the demanded quality plus one
    /// look-ahead layer.
    pub fn new(demand_layers: usize, budget: usize) -> Self {
        PrefetchPlanner {
            demand_layers,
            budget,
        }
    }

    /// Plan one round of prefetches against `cache` for packets
    /// `0..horizon`.
    pub fn plan(&self, cache: &LayerCache, horizon: u64) -> Vec<PacketId> {
        let mut out = Vec::new();
        let top = (self.demand_layers + 1).min(cache.n_layers());
        for layer in 0..top {
            for seq in cache.holes(layer, horizon) {
                if out.len() >= self.budget {
                    return out;
                }
                out.push(PacketId {
                    layer: layer as u8,
                    seq,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(layer: u8, seq: u64) -> PacketId {
        PacketId { layer, seq }
    }

    #[test]
    fn insert_and_request_account_hits_and_misses() {
        let mut c = LayerCache::new(3);
        assert!(!c.request(id(0, 0)));
        c.insert(id(0, 0));
        assert!(c.request(id(0, 0)));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert_eq!(c.stored(), 1);
    }

    #[test]
    fn insert_is_idempotent() {
        let mut c = LayerCache::new(1);
        c.insert(id(0, 5));
        c.insert(id(0, 5));
        assert_eq!(c.stored(), 1);
    }

    #[test]
    fn out_of_range_layer_ignored() {
        let mut c = LayerCache::new(2);
        c.insert(id(7, 0));
        assert_eq!(c.stored(), 0);
        assert!(!c.contains(id(7, 0)));
    }

    #[test]
    fn contiguous_prefix_stops_at_first_hole() {
        let mut c = LayerCache::new(1);
        for seq in [0u64, 1, 2, 4, 5] {
            c.insert(id(0, seq));
        }
        assert_eq!(c.contiguous_prefix(0), 3);
        assert_eq!(c.holes(0, 6), vec![3]);
    }

    #[test]
    fn serviceable_layers_requires_full_prefixes_bottom_up() {
        let mut c = LayerCache::new(3);
        for seq in 0..10 {
            c.insert(id(0, seq));
            c.insert(id(1, seq));
        }
        c.insert(id(2, 0)); // partial top layer
        assert_eq!(c.serviceable_layers(10), 2);
        assert_eq!(c.serviceable_layers(1), 3);
        // A hole in L0 caps everything, regardless of upper layers.
        let mut c2 = LayerCache::new(2);
        for seq in 0..10 {
            c2.insert(id(1, seq));
        }
        assert_eq!(c2.serviceable_layers(10), 0);
    }

    #[test]
    fn prefetch_fills_lowest_layer_first() {
        let mut c = LayerCache::new(3);
        // L0 has a hole at 2; L1 missing entirely.
        for seq in [0u64, 1, 3] {
            c.insert(id(0, seq));
        }
        let plan = PrefetchPlanner::new(1, 3).plan(&c, 4);
        // First the L0 hole, then L1 in order (look-ahead layer = 1+1 > n).
        assert_eq!(plan[0], id(0, 2));
        assert_eq!(plan[1], id(1, 0));
        assert_eq!(plan[2], id(1, 1));
        assert_eq!(plan.len(), 3, "budget respected");
    }

    #[test]
    fn prefetch_lookahead_covers_next_quality_step() {
        let mut c = LayerCache::new(4);
        for seq in 0..4 {
            c.insert(id(0, seq));
            c.insert(id(1, seq));
        }
        // Demand was 2 layers; the planner also prefetches layer 2 (the
        // likely next step) but not layer 3.
        let plan = PrefetchPlanner::new(2, 100).plan(&c, 4);
        assert!(plan.iter().all(|p| p.layer == 2));
        assert_eq!(plan.len(), 4);
    }

    #[test]
    fn repeated_sessions_converge_to_all_hits() {
        // Session 1 plays 2 layers through an empty cache (all misses, but
        // everything gets stored); prefetch rounds fill the look-ahead
        // layer; session 2 at 3 layers is then served entirely locally.
        let horizon = 50u64;
        let mut c = LayerCache::new(4);
        for seq in 0..horizon {
            for layer in 0..2u8 {
                if !c.request(id(layer, seq)) {
                    c.insert(id(layer, seq)); // fetched from origin, stored
                }
            }
        }
        assert_eq!(c.hits(), 0);
        let planner = PrefetchPlanner::new(2, 25);
        let mut rounds = 0;
        while c.serviceable_layers(horizon) < 3 {
            for p in planner.plan(&c, horizon) {
                c.insert(p);
            }
            rounds += 1;
            assert!(rounds < 100, "prefetch must converge");
        }
        let hits_before = c.hits();
        for seq in 0..horizon {
            for layer in 0..3u8 {
                assert!(c.request(id(layer, seq)), "session 2 must be all hits");
            }
        }
        assert_eq!(c.hits() - hits_before, horizon * 3);
    }
}
